"""Proximal Policy Optimization (clip variant) with manual gradients.

The update implements the standard PPO-clip surrogate

    L = -E[ min(rho_t A_t, clip(rho_t, 1-eps, 1+eps) A_t) ]
        - c_ent * H(pi)  +  c_v * (V(s) - R)^2

where ``rho_t = pi(a|s)/pi_old(a|s)``.  Gradients flow analytically:

* d(surrogate)/d(logp) = -A * rho on the active (unclipped) branch, else 0;
* d(logp)/d(mean), d(logp)/d(log_std) come from
  :meth:`repro.nn.distributions.DiagGaussian.log_prob_grads`;
* the mean gradient backpropagates through the actor MLP.

``tests/test_rl_ppo.py`` gradient-checks this against finite differences
and verifies the clipping semantics branch by branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.analysis import sanitizer as _sanitizer
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam, clip_grad_norm
from repro.rl.buffer import RolloutBuffer
from repro.rl.gae import (
    compute_gae,
    compute_gae_grouped,
    normalize_advantages,
    td_targets,
)
from repro.rl.policy import Critic, GaussianActor
from repro.utils.rng import SeedLike, as_generator


@dataclass
class PPOConfig:
    """Hyperparameters of the PPO update."""

    clip_epsilon: float = 0.2
    gamma: float = 0.99
    gae_lambda: float = 0.95
    epochs: int = 10               # M of Algorithm 1
    minibatch_size: int = 64
    actor_lr: float = 3e-4
    critic_lr: float = 1e-3
    entropy_coef: float = 1e-3
    max_grad_norm: float = 0.5
    normalize_advantages: bool = True
    target_kl: Optional[float] = 0.05
    advantage_mode: str = "gae"    # "gae" | "td" (paper's line-20 one-step form)
    #: Linearly decay learning rates to this fraction of their initial
    #: value over the training run (1.0 disables decay).  The trainer
    #: drives the decay by calling :meth:`PPOUpdater.set_progress`.
    lr_decay_to: float = 1.0

    def validate(self) -> "PPOConfig":
        if self.clip_epsilon <= 0:
            raise ValueError("clip_epsilon must be positive")
        if self.epochs <= 0 or self.minibatch_size <= 0:
            raise ValueError("epochs and minibatch_size must be positive")
        if self.advantage_mode not in ("gae", "td"):
            raise ValueError("advantage_mode must be 'gae' or 'td'")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if not 0.0 < self.lr_decay_to <= 1.0:
            raise ValueError("lr_decay_to must be in (0, 1]")
        return self


def _accumulate_log_std_grad(param, grad_vec: np.ndarray) -> None:
    """Accumulate a per-dimension log_std gradient into the parameter.

    Ordinary actors hold one log_std per action dimension; the
    permutation-shared actor (repro.rl.shared_policy) ties them to a
    single scalar, whose gradient is the sum over dimensions.
    """
    grad_vec = np.asarray(grad_vec, dtype=np.float64).ravel()
    if param.data.shape == grad_vec.shape:
        param.grad += grad_vec
    elif param.data.size == 1:
        param.grad += grad_vec.sum()
    else:  # pragma: no cover - defensive
        raise ValueError(
            f"log_std grad shape {grad_vec.shape} does not fit parameter "
            f"{param.data.shape}"
        )


def grouped_bootstrap_values(buffer: RolloutBuffer, critic: Critic) -> Dict[int, float]:
    """Per-env GAE bootstrap values for a vectorized buffer.

    For each env present in the buffer, the bootstrap is ``V(s')`` of its
    final stored transition (zero when that transition is terminal) —
    exactly the ``last_value`` the serial trainer hands to
    :meth:`PPOUpdater.update`, computed per env.
    """
    n = len(buffer)
    env_ids = buffer.env_ids[:n]
    dones = buffer.dones[:n]
    next_states = buffer.next_states[:n]
    out: Dict[int, float] = {}
    for e in np.unique(env_ids):
        last = int(np.flatnonzero(env_ids == e)[-1])
        if dones[last]:
            out[int(e)] = 0.0
        else:
            out[int(e)] = float(critic.value(next_states[last])[0])
    return out


@dataclass
class UpdateStats:
    """Diagnostics of one buffer-worth of PPO updates."""

    policy_loss: float = 0.0
    value_loss: float = 0.0
    entropy: float = 0.0
    approx_kl: float = 0.0
    clip_fraction: float = 0.0
    grad_norm_actor: float = 0.0
    grad_norm_critic: float = 0.0
    n_minibatches: int = 0
    early_stopped: bool = False
    #: True when the update was refused (non-finite batch) or rolled back
    #: (parameters diverged mid-update); the pre-update state is intact.
    skipped: bool = False

    @property
    def total_loss(self) -> float:
        """Combined scalar loss (what Fig. 6(a) tracks)."""
        return self.policy_loss + self.value_loss


class PPOUpdater:
    """Applies PPO-clip updates to an actor/critic pair from a buffer."""

    def __init__(
        self,
        actor: GaussianActor,
        critic: Critic,
        config: Optional[PPOConfig] = None,
        rng: SeedLike = None,
    ):
        self.actor = actor
        self.critic = critic
        self.config = (config or PPOConfig()).validate()
        self.rng = as_generator(rng)
        self.actor_opt = Adam(actor.parameters(), lr=self.config.actor_lr)
        self.critic_opt = Adam(critic.parameters(), lr=self.config.critic_lr)
        from repro.nn.schedules import LinearSchedule

        self._lr_schedule = LinearSchedule(1.0, self.config.lr_decay_to)

    def set_progress(self, progress: float) -> None:
        """Apply the linear LR decay at training progress in [0, 1]."""
        scale = self._lr_schedule(progress)
        self.actor_opt.lr = self.config.actor_lr * scale
        self.critic_opt.lr = self.config.critic_lr * scale

    # -- single-minibatch losses -----------------------------------------
    def _policy_minibatch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        old_log_probs: np.ndarray,
        advantages: np.ndarray,
    ) -> Dict[str, float]:
        cfg = self.config
        dist = self.actor.distribution(states)
        log_probs = dist.log_prob(actions)
        ratio = np.exp(np.clip(log_probs - old_log_probs, -30.0, 30.0))
        clipped_ratio = np.clip(ratio, 1.0 - cfg.clip_epsilon, 1.0 + cfg.clip_epsilon)
        surr1 = ratio * advantages
        surr2 = clipped_ratio * advantages
        objective = np.minimum(surr1, surr2)
        n = states.shape[0]

        # Gradient of -mean(objective) w.r.t. log_probs.  The gradient is
        # non-zero only where the unclipped branch is active: either
        # surr1 <= surr2 (min selects it) or the clip is not binding.
        unclipped_active = (surr1 <= surr2) | (
            (ratio > 1.0 - cfg.clip_epsilon) & (ratio < 1.0 + cfg.clip_epsilon)
        )
        d_obj_d_logp = np.where(unclipped_active, advantages * ratio, 0.0)
        d_loss_d_logp = -d_obj_d_logp / n

        d_mean, d_log_std_rows = dist.log_prob_grads(actions)
        grad_mean = d_loss_d_logp[:, None] * d_mean
        grad_log_std = (d_loss_d_logp[:, None] * d_log_std_rows).sum(axis=0)
        # Entropy bonus: -c_ent * H; dH/dlog_std = 1 per dim.
        grad_log_std -= cfg.entropy_coef * dist.entropy_grad_log_std()

        self.actor.zero_grad()
        self.actor.backward(grad_mean)
        _accumulate_log_std_grad(self.actor.log_std, grad_log_std)
        gnorm = clip_grad_norm(self.actor.parameters(), cfg.max_grad_norm)
        self.actor_opt.step()
        self.actor.clamp_log_std()

        entropy = dist.entropy()
        policy_loss = float(-objective.mean() - cfg.entropy_coef * entropy)
        approx_kl = float(np.mean(old_log_probs - log_probs))
        clip_frac = float(np.mean(np.abs(ratio - 1.0) > cfg.clip_epsilon))
        return {
            "policy_loss": policy_loss,
            "entropy": entropy,
            "approx_kl": approx_kl,
            "clip_fraction": clip_frac,
            "grad_norm": gnorm,
        }

    def _value_minibatch(self, states: np.ndarray, targets: np.ndarray) -> Dict[str, float]:
        pred = self.critic.forward(states)
        loss, grad = mse_loss(pred, targets[:, None])
        self.critic.zero_grad()
        self.critic.backward(grad)
        gnorm = clip_grad_norm(self.critic.parameters(), self.config.max_grad_norm)
        self.critic_opt.step()
        return {"value_loss": loss, "grad_norm": gnorm}

    # -- full update over the buffer --------------------------------------
    def update(self, buffer: RolloutBuffer, last_value: float = 0.0) -> UpdateStats:
        """Run ``M`` epochs of minibatch PPO over the buffer contents.

        The update is transactional: a non-finite batch is refused, and a
        non-finite post-update parameter state is rolled back to the
        pre-update snapshot (networks *and* Adam moments).  Either way the
        returned stats carry ``skipped=True`` and the policy is unchanged.
        """
        if len(buffer) == 0:
            raise ValueError("cannot update from an empty buffer")
        san = _sanitizer.ACTIVE
        if san is not None:
            # nn checks during this update report its ordinal.
            san.note_update()
        from repro.rl.guards import (
            arrays_finite,
            params_finite,
            restore_snapshot,
            take_snapshot,
        )

        if not arrays_finite(buffer.data(), np.asarray(last_value)):
            return UpdateStats(skipped=True)
        modules = [self.actor, self.critic]
        opts = [self.actor_opt, self.critic_opt]
        snapshot = take_snapshot(modules, opts)
        stats = self._update_impl(buffer, last_value)
        if not params_finite(modules):
            restore_snapshot(modules, opts, snapshot)
            return UpdateStats(skipped=True)
        return stats

    def _update_impl(self, buffer: RolloutBuffer, last_value: float) -> UpdateStats:
        cfg = self.config
        data = buffer.data()
        states = data["states"]
        actions = data["actions"]

        if cfg.advantage_mode == "gae":
            if getattr(buffer, "n_envs", 1) > 1:
                # Vectorized buffer: the recursion must not cross env
                # boundaries; bootstrap each env's tail separately.
                advantages, returns = compute_gae_grouped(
                    data["rewards"], data["values"], data["dones"],
                    buffer.env_ids[: len(buffer)],
                    grouped_bootstrap_values(buffer, self.critic),
                    cfg.gamma, cfg.gae_lambda,
                )
            else:
                advantages, returns = compute_gae(
                    data["rewards"], data["values"], data["dones"],
                    last_value, cfg.gamma, cfg.gae_lambda,
                )
        else:
            # Paper Algorithm 1 line 20: targets r + gamma * V(s');
            # advantage is the one-step TD error.  One-step targets are
            # purely elementwise, so env interleaving needs no special
            # handling here.
            next_values = self.critic.value(data["next_states"])
            returns = td_targets(data["rewards"], next_values, data["dones"], cfg.gamma)
            advantages = returns - data["values"]

        if cfg.normalize_advantages:
            advantages = normalize_advantages(advantages)

        stats = UpdateStats()
        policy_losses: List[float] = []
        value_losses: List[float] = []
        for epoch in range(cfg.epochs):
            epoch_kls = []
            for idx in buffer.minibatch_indices(cfg.minibatch_size, rng=self.rng):
                p = self._policy_minibatch(
                    states[idx], actions[idx], data["log_probs"][idx], advantages[idx]
                )
                v = self._value_minibatch(states[idx], returns[idx])
                policy_losses.append(p["policy_loss"])
                value_losses.append(v["value_loss"])
                epoch_kls.append(p["approx_kl"])
                stats.entropy = p["entropy"]
                stats.clip_fraction = p["clip_fraction"]
                stats.grad_norm_actor = p["grad_norm"]
                stats.grad_norm_critic = v["grad_norm"]
                stats.n_minibatches += 1
            stats.approx_kl = float(np.mean(epoch_kls))
            if cfg.target_kl is not None and stats.approx_kl > 1.5 * cfg.target_kl:
                stats.early_stopped = True
                break
        stats.policy_loss = float(np.mean(policy_losses))
        stats.value_loss = float(np.mean(value_losses))
        return stats
