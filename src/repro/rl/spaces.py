"""Continuous box spaces (the only space the scheduling problem needs)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class Box:
    """An axis-aligned box ``[low, high]^d`` in R^d.

    The environment's action space is
    ``Box(low=f_min/delta_max, high=1)^N`` — normalized CPU frequencies —
    and its observation space is the bandwidth-history box.
    """

    def __init__(self, low, high, shape=None):
        if shape is not None:
            low = np.full(shape, low, dtype=np.float64)
            high = np.full(shape, high, dtype=np.float64)
        self.low = np.asarray(low, dtype=np.float64)
        self.high = np.asarray(high, dtype=np.float64)
        if self.low.shape != self.high.shape:
            raise ValueError("low/high shape mismatch")
        if np.any(self.low > self.high):
            raise ValueError("low must be elementwise <= high")
        self.shape = self.low.shape

    @property
    def dim(self) -> int:
        return int(np.prod(self.shape))

    def contains(self, x) -> bool:
        x = np.asarray(x, dtype=np.float64)
        if x.shape != self.shape:
            return False
        return bool(np.all(x >= self.low - 1e-12) and np.all(x <= self.high + 1e-12))

    def clip(self, x) -> np.ndarray:
        return np.clip(np.asarray(x, dtype=np.float64), self.low, self.high)

    def sample(self, rng: SeedLike = None) -> np.ndarray:
        rng = as_generator(rng)
        return rng.uniform(self.low, self.high)

    def scale_from_unit(self, u) -> np.ndarray:
        """Map ``u`` in [0,1]^d affinely onto the box."""
        u = np.asarray(u, dtype=np.float64)
        return self.low + u * (self.high - self.low)

    def to_unit(self, x) -> np.ndarray:
        """Inverse of :meth:`scale_from_unit` (degenerate dims map to 0)."""
        x = np.asarray(x, dtype=np.float64)
        span = self.high - self.low
        safe = np.where(span > 0, span, 1.0)
        return np.where(span > 0, (x - self.low) / safe, 0.0)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Box(shape={self.shape}, low={self.low.min():.3g}, high={self.high.max():.3g})"
