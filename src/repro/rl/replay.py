"""Off-policy uniform replay memory (for DDPG).

Unlike the on-policy :class:`repro.rl.buffer.RolloutBuffer` (Algorithm
1's ``D``, cleared after each PPO update), this memory is a ring buffer
sampled uniformly with replacement — the classic experience replay of
DQN/DDPG.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class ReplayMemory:
    """Fixed-capacity ring buffer of transitions with uniform sampling."""

    def __init__(self, capacity: int, obs_dim: int, act_dim: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.states = np.zeros((capacity, obs_dim), dtype=np.float64)
        self.actions = np.zeros((capacity, act_dim), dtype=np.float64)
        self.rewards = np.zeros(capacity, dtype=np.float64)
        self.next_states = np.zeros((capacity, obs_dim), dtype=np.float64)
        self.dones = np.zeros(capacity, dtype=bool)
        self._next = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def add(self, state, action, reward, next_state, done) -> None:
        i = self._next
        self.states[i] = state
        self.actions[i] = action
        self.rewards[i] = reward
        self.next_states[i] = next_state
        self.dones[i] = done
        self._next = (self._next + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(self, batch_size: int, rng: SeedLike = None) -> Dict[str, np.ndarray]:
        """Uniform sample with replacement over the stored prefix."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self._size == 0:
            raise ValueError("cannot sample from an empty replay memory")
        rng = as_generator(rng)
        idx = rng.integers(0, self._size, size=batch_size)
        return {
            "states": self.states[idx],
            "actions": self.actions[idx],
            "rewards": self.rewards[idx],
            "next_states": self.next_states[idx],
            "dones": self.dones[idx],
        }
