"""Reinforcement-learning substrate: PPO actor-critic over numpy.

Implements the machinery Algorithm 1 of the paper requires: an experience
replay buffer, generalized advantage estimation, running normalizers, a
Gaussian MLP actor, an MLP critic and the PPO-clip update.
"""

from repro.rl.spaces import Box
from repro.rl.buffer import RolloutBuffer, Transition
from repro.rl.guards import (
    arrays_finite,
    params_finite,
    restore_snapshot,
    take_snapshot,
)
from repro.rl.gae import (
    compute_gae,
    compute_gae_reference,
    compute_returns,
    td_targets,
)
from repro.rl.normalization import ObservationNormalizer, RewardScaler
from repro.rl.policy import Critic, GaussianActor
from repro.rl.shared_policy import SharedGaussianActor
from repro.rl.ppo import PPOConfig, PPOUpdater, UpdateStats
from repro.rl.a2c import A2CUpdater
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.replay import ReplayMemory
from repro.rl.agent import AgentConfig, PPOAgent

__all__ = [
    "Box",
    "Transition",
    "RolloutBuffer",
    "compute_gae",
    "compute_gae_reference",
    "compute_returns",
    "td_targets",
    "ObservationNormalizer",
    "RewardScaler",
    "GaussianActor",
    "SharedGaussianActor",
    "Critic",
    "PPOConfig",
    "PPOUpdater",
    "UpdateStats",
    "A2CUpdater",
    "DDPGAgent",
    "DDPGConfig",
    "ReplayMemory",
    "AgentConfig",
    "PPOAgent",
    "arrays_finite",
    "params_finite",
    "take_snapshot",
    "restore_snapshot",
]
