"""Crash-safety guards for the DRL updaters.

One non-finite gradient is enough to destroy a policy permanently: the
NaN propagates into the parameters *and* into the Adam moment estimates,
after which every subsequent update is garbage.  The guards here make
updates transactional:

* :func:`arrays_finite` vets the training batch before any gradient is
  computed (a poisoned reward/observation is refused, not learned from);
* :func:`take_snapshot` / :func:`restore_snapshot` capture and roll back
  *both* the network parameters and the optimizer state (Adam's ``t`` and
  per-parameter ``m``/``v`` moments — restoring the weights alone would
  leave the moments NaN-polluted);
* :func:`params_finite` verifies the post-update state, triggering the
  rollback when an update diverged mid-flight.

A refused or rolled-back update is reported as ``UpdateStats.skipped``
so trainers can count the events without crashing the run.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.nn.optim import Adam, Optimizer


def arrays_finite(*arrays) -> bool:
    """True iff every given array (or dict of arrays) is fully finite."""
    for arr in arrays:
        if arr is None:
            continue
        if isinstance(arr, dict):
            if not arrays_finite(*arr.values()):
                return False
            continue
        if not np.all(np.isfinite(np.asarray(arr, dtype=np.float64))):
            return False
    return True


def params_finite(modules: Iterable) -> bool:
    """True iff every parameter of every module is fully finite."""
    for module in modules:
        for p in module.parameters():
            if not np.all(np.isfinite(p.data)):
                return False
    return True


def take_snapshot(
    modules: Sequence, optimizers: Sequence[Optimizer] = ()
) -> Dict[str, List]:
    """Copy all parameters and optimizer moments for a later rollback."""
    snap: Dict[str, List] = {
        "params": [
            [p.data.copy() for p in module.parameters()] for module in modules
        ],
        "opts": [],
    }
    for opt in optimizers:
        if isinstance(opt, Adam):
            snap["opts"].append(
                {
                    "t": opt.t,
                    "m": [m.copy() for m in opt._m],
                    "v": [v.copy() for v in opt._v],
                }
            )
        else:
            snap["opts"].append(None)
    return snap


def restore_snapshot(
    modules: Sequence, optimizers: Sequence[Optimizer], snap: Dict[str, List]
) -> None:
    """Roll modules and optimizers back to a :func:`take_snapshot` state."""
    for module, saved in zip(modules, snap["params"]):
        for p, data in zip(module.parameters(), saved):
            p.data[...] = data
    for opt, saved in zip(optimizers, snap["opts"]):
        if saved is None or not isinstance(opt, Adam):
            continue
        opt.t = saved["t"]
        for m, sm in zip(opt._m, saved["m"]):
            m[...] = sm
        for v, sv in zip(opt._v, saved["v"]):
            v[...] = sv
