"""Experience replay buffer ``D`` of Algorithm 1.

The paper's procedure stores transitions ``(s_k, a_k, r_k, s_{k+1})``,
updates the networks for ``M`` epochs once the buffer is full, then clears
it (on-policy use, PPO-style).  The buffer stores preallocated contiguous
arrays so the PPO update consumes plain matrix views with no per-sample
Python overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Transition:
    """One ``(s, a, r, s')`` sample plus the log-prob/value at collection."""

    state: np.ndarray
    action: np.ndarray
    reward: float
    next_state: np.ndarray
    done: bool
    log_prob: float
    value: float


class RolloutBuffer:
    """Fixed-capacity on-policy buffer with preallocated storage.

    ``n_envs > 1`` widens the buffer for vectorized collection: batches
    of per-env transitions land via :meth:`add_batch`, and the stored
    ``env_ids`` let the updater recover each env's time-ordered
    sub-trajectory (episode boundaries included) for GAE.  The flat
    storage layout — and therefore checkpointing and the PPO minibatch
    machinery — is identical to the single-env case.
    """

    def __init__(self, capacity: int, obs_dim: int, act_dim: int, n_envs: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if n_envs <= 0:
            raise ValueError("n_envs must be positive")
        if n_envs > capacity:
            raise ValueError("n_envs cannot exceed capacity")
        self.capacity = int(capacity)
        self.obs_dim = int(obs_dim)
        self.act_dim = int(act_dim)
        self.n_envs = int(n_envs)
        self.states = np.zeros((capacity, obs_dim), dtype=np.float64)
        self.actions = np.zeros((capacity, act_dim), dtype=np.float64)
        self.rewards = np.zeros(capacity, dtype=np.float64)
        self.next_states = np.zeros((capacity, obs_dim), dtype=np.float64)
        self.dones = np.zeros(capacity, dtype=bool)
        self.log_probs = np.zeros(capacity, dtype=np.float64)
        self.values = np.zeros(capacity, dtype=np.float64)
        self.env_ids = np.zeros(capacity, dtype=np.intp)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        """Whether another batch of ``n_envs`` transitions cannot fit.

        For ``n_envs == 1`` this is the classic exact-capacity trigger;
        for vectorized collection the update fires as soon as the next
        batch would overflow (episodes of unequal length may leave the
        final rows unused)."""
        return self._size + self.n_envs > self.capacity

    def add(
        self,
        state: np.ndarray,
        action: np.ndarray,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        log_prob: float,
        value: float,
    ) -> None:
        """Append one transition; raises when the buffer is already full."""
        if self.full:
            raise RuntimeError(
                "RolloutBuffer is full; run the PPO update and clear() first"
            )
        i = self._size
        self.states[i] = state
        self.actions[i] = action
        self.rewards[i] = reward
        self.next_states[i] = next_state
        self.dones[i] = done
        self.log_probs[i] = log_prob
        self.values[i] = value
        self._size += 1

    def add_batch(
        self,
        env_ids: np.ndarray,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        dones: np.ndarray,
        log_probs: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Append one transition per (active) env in env-index order.

        ``env_ids`` names the source env of each row; rows must arrive
        time-ordered per env (which a synchronous collector guarantees).
        """
        env_ids = np.asarray(env_ids, dtype=np.intp).ravel()
        k = env_ids.size
        if k == 0:
            return
        if k > self.n_envs:
            raise ValueError(
                f"batch of {k} transitions exceeds the buffer's {self.n_envs} envs"
            )
        # Check the *actual* batch against the remaining rows, not the
        # worst-case n_envs: envs finishing at different times legally
        # produce tail batches of k < n_envs rows that still fit.
        if self._size + k > self.capacity:
            raise RuntimeError(
                "RolloutBuffer is full; run the PPO update and clear() first"
            )
        i = self._size
        sl = slice(i, i + k)
        self.env_ids[sl] = env_ids
        self.states[sl] = states
        self.actions[sl] = actions
        self.rewards[sl] = rewards
        self.next_states[sl] = next_states
        self.dones[sl] = dones
        self.log_probs[sl] = log_probs
        self.values[sl] = values
        self._size = i + k

    def add_transition(self, t: Transition) -> None:
        self.add(t.state, t.action, t.reward, t.next_state, t.done, t.log_prob, t.value)

    def clear(self) -> None:
        """Empty the buffer (Algorithm 1, line 23)."""
        self._size = 0

    def data(self) -> Dict[str, np.ndarray]:
        """Views over the filled prefix (no copies)."""
        n = self._size
        return {
            "states": self.states[:n],
            "actions": self.actions[:n],
            "rewards": self.rewards[:n],
            "next_states": self.next_states[:n],
            "dones": self.dones[:n],
            "log_probs": self.log_probs[:n],
            "values": self.values[:n],
        }

    def minibatch_indices(
        self, batch_size: int, rng: SeedLike = None, drop_last: bool = False
    ) -> Iterator[np.ndarray]:
        """Yield shuffled index blocks covering the filled prefix.

        Raises on an empty buffer: iterating zero minibatches would let
        an update "succeed" with zero gradient steps, which is always a
        caller bug (the updaters guard with their own empty-buffer check).
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self._size == 0:
            raise ValueError(
                "minibatch_indices on an empty buffer would yield no "
                "minibatches; fill the buffer before updating"
            )
        rng = as_generator(rng)
        perm = rng.permutation(self._size)
        for start in range(0, self._size, batch_size):
            block = perm[start : start + batch_size]
            if drop_last and block.size < batch_size:
                break
            yield block
