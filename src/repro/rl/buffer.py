"""Experience replay buffer ``D`` of Algorithm 1.

The paper's procedure stores transitions ``(s_k, a_k, r_k, s_{k+1})``,
updates the networks for ``M`` epochs once the buffer is full, then clears
it (on-policy use, PPO-style).  The buffer stores preallocated contiguous
arrays so the PPO update consumes plain matrix views with no per-sample
Python overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Transition:
    """One ``(s, a, r, s')`` sample plus the log-prob/value at collection."""

    state: np.ndarray
    action: np.ndarray
    reward: float
    next_state: np.ndarray
    done: bool
    log_prob: float
    value: float


class RolloutBuffer:
    """Fixed-capacity on-policy buffer with preallocated storage."""

    def __init__(self, capacity: int, obs_dim: int, act_dim: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.obs_dim = int(obs_dim)
        self.act_dim = int(act_dim)
        self.states = np.zeros((capacity, obs_dim), dtype=np.float64)
        self.actions = np.zeros((capacity, act_dim), dtype=np.float64)
        self.rewards = np.zeros(capacity, dtype=np.float64)
        self.next_states = np.zeros((capacity, obs_dim), dtype=np.float64)
        self.dones = np.zeros(capacity, dtype=bool)
        self.log_probs = np.zeros(capacity, dtype=np.float64)
        self.values = np.zeros(capacity, dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size >= self.capacity

    def add(
        self,
        state: np.ndarray,
        action: np.ndarray,
        reward: float,
        next_state: np.ndarray,
        done: bool,
        log_prob: float,
        value: float,
    ) -> None:
        """Append one transition; raises when the buffer is already full."""
        if self.full:
            raise RuntimeError(
                "RolloutBuffer is full; run the PPO update and clear() first"
            )
        i = self._size
        self.states[i] = state
        self.actions[i] = action
        self.rewards[i] = reward
        self.next_states[i] = next_state
        self.dones[i] = done
        self.log_probs[i] = log_prob
        self.values[i] = value
        self._size += 1

    def add_transition(self, t: Transition) -> None:
        self.add(t.state, t.action, t.reward, t.next_state, t.done, t.log_prob, t.value)

    def clear(self) -> None:
        """Empty the buffer (Algorithm 1, line 23)."""
        self._size = 0

    def data(self) -> Dict[str, np.ndarray]:
        """Views over the filled prefix (no copies)."""
        n = self._size
        return {
            "states": self.states[:n],
            "actions": self.actions[:n],
            "rewards": self.rewards[:n],
            "next_states": self.next_states[:n],
            "dones": self.dones[:n],
            "log_probs": self.log_probs[:n],
            "values": self.values[:n],
        }

    def minibatch_indices(
        self, batch_size: int, rng: SeedLike = None, drop_last: bool = False
    ) -> Iterator[np.ndarray]:
        """Yield shuffled index blocks covering the filled prefix."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        rng = as_generator(rng)
        perm = rng.permutation(self._size)
        for start in range(0, self._size, batch_size):
            block = perm[start : start + batch_size]
            if drop_last and block.size < batch_size:
                break
            yield block
