"""Permutation-shared actor: one network for any fleet size.

The paper's actor takes the flat ``N x (H+1)`` state, so its parameter
count grows with the number of devices and a trained policy is locked to
one N.  A scalable alternative (in the spirit of the parameter-sharing
used by Decima [51], which the paper cites) applies *one shared network*
to every device:

    mean_i = f_theta([ own_history_i ; mean-pooled fleet context ])

The per-device input is the device's own H+1 bandwidth slots plus the
fleet's mean/min/max history (the coupling signal: the deadline is set by
the slowest device).  The same parameters therefore serve N = 3 or
N = 500, and the policy is permutation-equivariant by construction.

:class:`SharedGaussianActor` is a drop-in replacement for
:class:`repro.rl.policy.GaussianActor` — same ``forward`` /
``backward`` / ``distribution`` / ``act`` surface over the flattened
observation — so the PPO machinery is reused unchanged.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.distributions import DiagGaussian
from repro.nn.modules import MLP, Module, Parameter
from repro.utils.rng import SeedLike, as_generator

#: Fleet-context features appended to each device's own history.
N_CONTEXT_STATS = 3  # mean, min, max per history slot


class SharedGaussianActor(Module):
    """Parameter-shared per-device Gaussian policy.

    Parameters
    ----------
    n_devices:
        Fleet size N the observations are shaped for.  Only the *input
    reshaping* depends on it — the learned parameters do not, and
        :meth:`with_fleet_size` rebinds a trained network to a new N.
    history_slots_plus_one:
        H+1, the per-device slot count.
    """

    LOG_STD_MIN = -5.0
    LOG_STD_MAX = 1.0

    def __init__(
        self,
        n_devices: int,
        history_slots_plus_one: int,
        hidden=(64, 64),
        activation: str = "tanh",
        init_log_std: float = -1.0,
        rng: SeedLike = None,
    ):
        if n_devices <= 0 or history_slots_plus_one <= 0:
            raise ValueError("n_devices and history_slots_plus_one must be positive")
        rng = as_generator(rng)
        self.n_devices = int(n_devices)
        self.h = int(history_slots_plus_one)
        self.obs_dim = self.n_devices * self.h
        self.act_dim = self.n_devices
        per_device_in = self.h * (1 + N_CONTEXT_STATS)
        self.net = MLP(
            per_device_in, hidden, 1, activation=activation, out_gain=0.01, rng=rng
        )
        self.log_std = Parameter(np.full(1, float(init_log_std)), name="log_std")
        self._batch = 0

    def parameters(self) -> List[Parameter]:
        return self.net.parameters() + [self.log_std]

    # -- observation plumbing ------------------------------------------------
    def _stack_inputs(self, obs: np.ndarray) -> np.ndarray:
        """(B, N*h) -> (B*N, h*(1+stats)) shared-network input (pure)."""
        obs = np.atleast_2d(np.asarray(obs, dtype=np.float64))
        if obs.shape[1] != self.obs_dim:
            raise ValueError(
                f"expected obs dim {self.obs_dim} (= {self.n_devices} x {self.h}), "
                f"got {obs.shape[1]}"
            )
        b = obs.shape[0]
        per = obs.reshape(b, self.n_devices, self.h)
        context = np.concatenate(
            [
                per.mean(axis=1, keepdims=True),
                per.min(axis=1, keepdims=True),
                per.max(axis=1, keepdims=True),
            ],
            axis=2,
        )  # (B, 1, 3h)
        context = np.broadcast_to(context, (b, self.n_devices, N_CONTEXT_STATS * self.h))
        stacked = np.concatenate([per, context], axis=2)
        return stacked.reshape(b * self.n_devices, self.h * (1 + N_CONTEXT_STATS))

    def _per_device_inputs(self, obs: np.ndarray) -> np.ndarray:
        """Like :meth:`_stack_inputs` but records the batch for backward."""
        obs = np.atleast_2d(np.asarray(obs, dtype=np.float64))
        self._batch = obs.shape[0]
        return self._stack_inputs(obs)

    def forward(self, obs: np.ndarray) -> np.ndarray:
        flat = self._per_device_inputs(obs)
        out = self.net.forward(flat)              # (B*N, 1)
        return out.reshape(self._batch, self.n_devices)

    def mean_infer(self, obs: np.ndarray) -> np.ndarray:
        """Batch-stable deterministic mean (see GaussianActor.mean_infer).

        The per-row context pooling reduces only within a row, so stacking
        rows into one batch never changes any row's result.  Nothing is
        cached — concurrent with training/backward is safe.
        """
        obs = np.atleast_2d(np.asarray(obs, dtype=np.float64))
        b = obs.shape[0]
        out = self.net.forward_infer(self._stack_inputs(obs))  # (B*N, 1)
        return out.reshape(b, self.n_devices)

    def backward(self, grad_mean: np.ndarray) -> np.ndarray:
        """Backprop d(loss)/d(mean) through the shared network.

        Gradients w.r.t. the *observation* are returned reshaped to the
        flat layout; the context-pooling path is treated as constant
        (standard stop-gradient on pooled summaries), which keeps the
        update exact for the network parameters.
        """
        grad_mean = np.asarray(grad_mean, dtype=np.float64)
        grad_flat = grad_mean.reshape(self._batch * self.n_devices, 1)
        grad_in = self.net.backward(grad_flat)    # (B*N, h*(1+stats))
        own = grad_in[:, : self.h].reshape(self._batch, self.n_devices * self.h)
        return own

    # -- GaussianActor-compatible surface ------------------------------------
    def clamp_log_std(self) -> None:
        np.clip(self.log_std.data, self.LOG_STD_MIN, self.LOG_STD_MAX,
                out=self.log_std.data)

    def distribution(self, obs: np.ndarray) -> DiagGaussian:
        # The scalar log_std broadcasts over the action dimensions; the
        # PPO/A2C updaters tie the gradient by summing into the scalar
        # (see repro.rl.ppo._accumulate_log_std_grad).
        mean = self.forward(obs)
        shared_std = np.full(self.act_dim, float(self.log_std.data[0]))
        return DiagGaussian(mean, shared_std)

    def act(self, obs: np.ndarray, rng: SeedLike = None, deterministic: bool = False):
        dist = self.distribution(obs)
        action = dist.mode() if deterministic else dist.sample(rng)
        return action[0], float(dist.log_prob(action)[0])

    def copy_weights_from(self, other: "SharedGaussianActor") -> None:
        for dst, src in zip(self.parameters(), other.parameters()):
            if dst.data.shape != src.data.shape:
                raise ValueError("shared-actor architecture mismatch")
            dst.data[...] = src.data

    def with_fleet_size(self, n_devices: int) -> "SharedGaussianActor":
        """Rebind the trained parameters to a different fleet size."""
        clone = SharedGaussianActor(
            n_devices, self.h, hidden=self.net.hidden, rng=0
        )
        clone.net.load_state_dict(self.net.state_dict())
        clone.log_std.data[...] = self.log_std.data
        return clone

    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state = self.net.state_dict(prefix=f"{prefix}mean/")
        state[f"{prefix}log_std"] = self.log_std.data.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        self.net.load_state_dict(state, prefix=f"{prefix}mean/")
        self.log_std.data[...] = np.asarray(state[f"{prefix}log_std"])
