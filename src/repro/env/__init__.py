"""Gym-style environment exposing the FL scheduling problem to DRL.

State, action and reward follow Section IV.B of the paper exactly:
state = per-device bandwidth history (H+1 slots), action = per-device
CPU-cycle frequency in ``(0, delta_max]``, reward = Eq. (13).
"""

from repro.env.fl_env import EnvConfig, FLSchedulingEnv, StepResult
from repro.env.wrappers import ActionMapper, NoisyObservationWrapper

__all__ = [
    "FLSchedulingEnv",
    "EnvConfig",
    "StepResult",
    "ActionMapper",
    "NoisyObservationWrapper",
]
