"""Action mapping and observation wrappers.

The Gaussian policy emits unbounded real vectors.  :class:`ActionMapper`
squashes them into the paper's action set ``(0, delta_max]`` per device:

    frac_i = floor + (1 + clip(a_i, -1, 1)) / 2 * (1 - floor)
    delta_i = frac_i * delta_max_i

A raw action of 0 (the freshly initialized policy mean) therefore maps to
mid-range frequencies, giving PPO a sensible starting operating point.

:class:`NoisyObservationWrapper` injects multiplicative measurement noise
into the bandwidth-history state — real slot measurements come from
imperfect throughput sampling, and the robustness test
(``tests/test_core_online.py``) checks the trained policy tolerates it.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator


class ActionMapper:
    """Bijective-on-[-1,1] map from policy outputs to frequencies (GHz)."""

    def __init__(self, max_frequencies: np.ndarray, floor_frac: float = 0.1):
        if not 0.0 < floor_frac < 1.0:
            raise ValueError("floor_frac must be in (0, 1)")
        self.max_frequencies = np.asarray(max_frequencies, dtype=np.float64)
        if np.any(self.max_frequencies <= 0):
            raise ValueError("max frequencies must be positive")
        self.floor_frac = float(floor_frac)

    @property
    def n(self) -> int:
        return self.max_frequencies.size

    def to_frequencies(self, raw_action: np.ndarray) -> np.ndarray:
        """Map a raw policy action to clamped frequencies."""
        a = np.clip(np.asarray(raw_action, dtype=np.float64).ravel(), -1.0, 1.0)
        if a.size != self.n:
            raise ValueError(f"expected action of size {self.n}, got {a.size}")
        frac = self.floor_frac + 0.5 * (1.0 + a) * (1.0 - self.floor_frac)
        return frac * self.max_frequencies

    def to_frequencies_batch(self, raw_actions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`to_frequencies` over a ``(B, n)`` batch.

        Purely elementwise, so row ``i`` equals
        ``to_frequencies(raw_actions[i])`` bit-for-bit — the serving
        engine (:mod:`repro.serve`) maps whole micro-batches at once.
        """
        a = np.clip(np.asarray(raw_actions, dtype=np.float64), -1.0, 1.0)
        if a.ndim != 2 or a.shape[1] != self.n:
            raise ValueError(f"expected actions of shape (B, {self.n}), got {a.shape}")
        frac = self.floor_frac + 0.5 * (1.0 + a) * (1.0 - self.floor_frac)
        return frac * self.max_frequencies

    def to_raw(self, frequencies: np.ndarray) -> np.ndarray:
        """Inverse map (frequencies inside the range; used in tests)."""
        f = np.asarray(frequencies, dtype=np.float64).ravel()
        frac = f / self.max_frequencies
        frac = np.clip(frac, self.floor_frac, 1.0)
        return 2.0 * (frac - self.floor_frac) / (1.0 - self.floor_frac) - 1.0


class NoisyObservationWrapper:
    """Wraps an :class:`repro.env.fl_env.FLSchedulingEnv` with
    multiplicative log-normal noise on the bandwidth observations.

    ``sigma`` is the log-std of the noise factor; 0 disables it.  Actions
    and rewards pass through untouched — only what the *policy sees* is
    corrupted, modelling imperfect throughput measurement.
    """

    def __init__(self, env, sigma: float = 0.1, rng: SeedLike = None):
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.env = env
        self.sigma = float(sigma)
        self.rng = as_generator(rng)

    def _corrupt(self, obs: np.ndarray) -> np.ndarray:
        if self.sigma == 0.0:
            return obs
        factors = np.exp(self.rng.standard_normal(obs.shape) * self.sigma)
        return obs * factors

    # -- pass-through surface ------------------------------------------------
    @property
    def obs_dim(self) -> int:
        return self.env.obs_dim

    @property
    def act_dim(self) -> int:
        return self.env.act_dim

    @property
    def system(self):
        return self.env.system

    @property
    def config(self):
        return self.env.config

    def reset(self, start_time=None) -> np.ndarray:
        return self._corrupt(self.env.reset(start_time))

    def step(self, raw_action: np.ndarray):
        result = self.env.step(raw_action)
        from dataclasses import replace as dc_replace

        return dc_replace(result, observation=self._corrupt(result.observation))
