"""The FL computational-resource-allocation environment (Fig. 5).

Each environment step is one synchronized federated-learning iteration:

* **state** ``s_k``: the flattened ``(N, H+1)`` bandwidth-history matrix
  (Section IV.B.1);
* **action** ``a_k``: a raw policy vector mapped by
  :class:`repro.env.wrappers.ActionMapper` onto per-device frequencies
  ``delta_i^k in (0, delta_i^max]`` (Section IV.B.2);
* **reward** ``r_k = -T^k - lambda sum_i E_i^k`` (Eq. 13).

Optionally the environment co-simulates actual FedAvg training (a
:class:`repro.fl.FederatedTrainer`), terminating the episode early when
the Eq. (10) loss constraint ``F(omega) <= epsilon`` is met.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.env.wrappers import ActionMapper
from repro.rl.spaces import Box
from repro.sim.iteration import IterationResult
from repro.sim.system import FLSystem
from repro.utils.rng import SeedLike, as_generator


@dataclass
class EnvConfig:
    """Episode configuration."""

    episode_length: int = 64
    #: Lowest frequency fraction the action can select.
    action_floor_frac: float = 0.1
    #: Randomize the start time t^1 on every reset (Algorithm 1, line 6).
    random_start: bool = True

    def validate(self) -> "EnvConfig":
        if self.episode_length <= 0:
            raise ValueError("episode_length must be positive")
        if not 0.0 < self.action_floor_frac < 1.0:
            raise ValueError("action_floor_frac must be in (0, 1)")
        return self


@dataclass(frozen=True)
class StepResult:
    """The (s', r, done, info) tuple plus the raw iteration record."""

    observation: np.ndarray
    reward: float
    done: bool
    info: Dict[str, float]
    iteration: IterationResult


class FLSchedulingEnv:
    """Gym-style wrapper around :class:`repro.sim.system.FLSystem`."""

    def __init__(
        self,
        system: FLSystem,
        config: Optional[EnvConfig] = None,
        fl_trainer=None,
        rng: SeedLike = None,
    ):
        self.system = system
        self.config = (config or EnvConfig()).validate()
        self.fl_trainer = fl_trainer
        self.rng = as_generator(rng)
        self.mapper = ActionMapper(
            system.fleet.max_frequencies, self.config.action_floor_frac
        )
        n = system.n_devices
        h = system.config.history_slots + 1
        self.observation_space = Box(low=0.0, high=np.inf, shape=(n * h,))
        self.action_space = Box(low=-1.0, high=1.0, shape=(n,))
        # Cache the space dims: Box.dim recomputes a prod per call, and
        # step() sits on the rollout hot path.
        self._obs_dim = self.observation_space.dim
        self._act_dim = self.action_space.dim
        self._steps = 0

    @property
    def obs_dim(self) -> int:
        return self._obs_dim

    @property
    def act_dim(self) -> int:
        return self._act_dim

    def reseed(self, rng: SeedLike) -> None:
        """Replace the episode-start RNG stream (vector-worker reseeding)."""
        self.rng = as_generator(rng)

    def _observe(self) -> np.ndarray:
        return self.system.bandwidth_state().ravel()

    def reset(
        self, start_time: Optional[float] = None, seed: Optional[int] = None
    ) -> np.ndarray:
        """Start a new episode; returns the initial observation ``s_1``.

        ``seed`` optionally reseeds the env's RNG stream for this (and
        subsequent) episodes, so a vector worker can re-randomize a
        long-lived env without rebuilding it.
        """
        if seed is not None:
            self.reseed(seed)
        if start_time is not None:
            self.system.reset(start_time)
        elif self.config.random_start:
            self.system.reset_random(self.rng)
        else:
            self.system.reset(0.0)
        self._steps = 0
        return self._observe()

    def step(self, raw_action: np.ndarray) -> StepResult:
        """Advance one federated-learning iteration.

        The raw action is validated before it touches the simulator: a
        diverged policy emitting NaN/Inf (or the wrong shape) raises a
        clear error here instead of silently corrupting the clock.
        """
        raw = np.asarray(raw_action, dtype=np.float64).reshape(-1)
        if raw.shape != (self.act_dim,):
            raise ValueError(
                f"expected an action of {self.act_dim} entries, got shape "
                f"{np.asarray(raw_action).shape}"
            )
        if not np.all(np.isfinite(raw)):
            raise ValueError(
                "action contains non-finite values (NaN/Inf) — the policy "
                "has diverged; see repro.rl guards for recovery"
            )
        freqs = self.mapper.to_frequencies(raw)
        # The mapper guarantees finite frequencies in (0, delta_max], so
        # the system's defensive re-validation can be skipped on this
        # hot path.
        result = self.system.step(freqs, validate=False)
        self._steps += 1
        done = self._steps >= self.config.episode_length
        info: Dict[str, float] = {
            "cost": result.cost,
            "iteration_time_s": result.iteration_time,
            "total_energy": result.total_energy,
            "clock": self.system.clock,
            "n_participants": float(result.n_participants),
            "failed_attempts": float(result.failed_attempts),
        }
        if self.fl_trainer is not None:
            # Under fault injection only the surviving devices deliver an
            # update; mirror that in the co-simulated FedAvg round when
            # the client count matches the fleet.
            mask = None
            if (
                result.participants is not None
                and not result.participants.all()
                and len(self.fl_trainer.clients) == result.participants.size
            ):
                mask = result.participants
            global_loss = self.fl_trainer.run_round(participants=mask)
            info["global_loss"] = global_loss
            if global_loss <= self.fl_trainer.config.epsilon:
                # Eq. (10): quality threshold reached — learning finished.
                done = True
                info["converged"] = 1.0
        return StepResult(
            observation=self._observe(),
            reward=result.reward,
            done=done,
            info=info,
            iteration=result,
        )

    def frequencies_to_action(self, freqs: np.ndarray) -> np.ndarray:
        """Expose the inverse action map (testing/behaviour cloning)."""
        return self.mapper.to_raw(freqs)
