"""Durable checkpoint rotation with corruption fallback.

Builds on the durability primitives of :mod:`repro.utils.serialization`
(fsync-before-rename publication, sha256 sidecar manifests,
:class:`~repro.utils.serialization.CheckpointCorruptError`) to keep the
last ``keep`` good checkpoint generations on disk and fall back through
them at load time:

* ``path``     — the newest checkpoint;
* ``path.1``   — the previous generation;
* ``path.{k}`` — ... up to ``keep - 1`` generations back.

A checkpoint that fails its checksum or cannot be parsed is skipped
(with a ``checkpoint_corrupt`` telemetry event) and the next older
generation is tried, so one torn write costs at most ``checkpoint_every``
episodes of progress instead of the whole run.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.obs import get_telemetry
from repro.utils.serialization import (
    CheckpointCorruptError,
    load_npz_state,
    rotation_chain,
    save_npz_state,
)


def load_checkpoint_with_fallback(
    path: str, keep: int = 1
) -> Tuple[Dict[str, np.ndarray], str]:
    """Load the newest *good* checkpoint of a rotation.

    Tries ``path``, then ``path.1`` ... ``path.{keep-1}``; returns
    ``(state, used_path)``.  Corrupt generations are reported through
    telemetry and skipped.  Raises :class:`FileNotFoundError` when no
    generation exists, or :class:`CheckpointCorruptError` when every
    existing generation is corrupt.
    """
    tel = get_telemetry()
    errors: List[str] = []
    existed = False
    for candidate in rotation_chain(path, keep):
        if not os.path.exists(candidate):
            continue
        existed = True
        try:
            return load_npz_state(candidate), candidate
        except CheckpointCorruptError as exc:
            errors.append(str(exc))
            if tel.enabled:
                tel.on_checkpoint_corrupt(
                    path=candidate, error=str(exc).splitlines()[0]
                )
    if not existed:
        raise FileNotFoundError(f"no checkpoint at {path} (or rotations)")
    raise CheckpointCorruptError(
        "every checkpoint generation is corrupt:\n" + "\n".join(errors)
    )


class CheckpointManager:
    """Rotated, checksummed, fsync-durable checkpoints at one path.

    ``save`` publishes a new generation (rotating the existing ones);
    ``load`` returns the newest generation that passes verification.
    """

    def __init__(self, path: str, keep: int = 3, durable: bool = True):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.path = str(path)
        self.keep = int(keep)
        self.durable = bool(durable)

    def save(self, state: Mapping[str, np.ndarray]) -> str:
        save_npz_state(self.path, state, keep=self.keep, durable=self.durable)
        return self.path

    def load(self) -> Dict[str, np.ndarray]:
        return self.load_with_source()[0]

    def load_with_source(self) -> Tuple[Dict[str, np.ndarray], str]:
        """Like :meth:`load` but also reports which generation was used."""
        return load_checkpoint_with_fallback(self.path, keep=self.keep)

    def generations(self) -> List[str]:
        """The on-disk generations, newest first."""
        return [p for p in rotation_chain(self.path, self.keep) if os.path.exists(p)]

    def latest(self) -> Optional[str]:
        """The newest on-disk generation path, or ``None``."""
        existing = self.generations()
        return existing[0] if existing else None
