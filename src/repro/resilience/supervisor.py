"""Supervised vectorized envs: worker crashes become recoverable.

:class:`SupervisedVecEnv` extends :class:`repro.parallel.SubprocVecEnv`
with a supervision loop.  When a worker dies (killed, OOM, unhandled
exception) or hangs past the backend timeout, the supervisor — instead
of letting :class:`~repro.parallel.WorkerCrashError` abort the run —

1. reaps the dead/hung process (terminate -> kill escalation),
2. waits out an exponential backoff,
3. respawns the worker, which rebuilds its envs from the pickled
   :class:`~repro.parallel.EnvSpec` (deterministic initial state),
4. **replays the command journal** for that worker's env chunk — an RNG
   resync (via the ``set_rng``/``get_rng`` worker hooks) captured at the
   last episode boundary, the episode's ``reset``, and every ``step``
   taken since — reconstructing the worker's simulator *and* RNG state
   bit-exactly (env randomness is keyed only by ``(spec.seed, index)``
   and each step is a deterministic function of state + action), and
5. re-issues the in-flight command, whose result was never consumed.

The recovered rollout stream is therefore **bit-identical** to an
uncrashed run: no other worker steps twice, no RNG stream skips ahead,
and the trainer never observes the crash (beyond a ``worker_restart``
telemetry event and the wall-clock cost of the replay).

Restarts are budgeted (:class:`SupervisorConfig`); when the budget is
exhausted the supervisor escalates by raising
:class:`SupervisionExhaustedError` (a ``WorkerCrashError`` subclass, so
existing crash handling still catches it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import get_telemetry
from repro.parallel.spec import EnvSpec
from repro.parallel.vec_env import SubprocVecEnv, WorkerCrashError


class SupervisionExhaustedError(WorkerCrashError):
    """The restart budget ran out; the crash is escalated as fatal."""


@dataclass(frozen=True)
class SupervisorConfig:
    """Restart policy of a :class:`SupervisedVecEnv`.

    ``max_restarts`` bounds the *total* number of worker respawns over
    the env's lifetime; the backoff before the ``k``-th consecutive
    restart of one worker is ``min(base * factor**(k-1), max)`` seconds,
    so a flapping worker cannot hot-loop the supervisor.
    """

    max_restarts: int = 8
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0

    def validate(self) -> "SupervisorConfig":
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError("backoff_max_s must be >= backoff_base_s")
        return self

    def backoff_s(self, consecutive: int) -> float:
        """Backoff before restart number ``consecutive`` (1-based)."""
        if consecutive <= 0:
            return 0.0
        return float(
            min(
                self.backoff_base_s * self.backoff_factor ** (consecutive - 1),
                self.backoff_max_s,
            )
        )


#: Commands that mutate worker-side env state and must be replayed on a
#: respawned worker (``get_rng`` only reads and is not journaled).
_JOURNALED = frozenset({"reset", "step", "set_rng"})


class SupervisedVecEnv(SubprocVecEnv):
    """A :class:`SubprocVecEnv` whose workers are respawned on crash.

    Drop-in replacement: same constructor plus ``supervisor`` (a
    :class:`SupervisorConfig`).  With no crashes the only behavioural
    difference is one extra ``get_rng`` round-trip per ``reset`` — the
    journal's RNG baseline — which reads worker state without advancing
    any stream, so trajectories stay bit-identical to the unsupervised
    backend.
    """

    def __init__(
        self,
        spec: EnvSpec,
        n_envs: int,
        workers: Optional[int] = None,
        timeout: float = 60.0,
        start_method: Optional[str] = None,
        supervisor: Optional[SupervisorConfig] = None,
    ):
        self.supervisor = (supervisor or SupervisorConfig()).validate()
        #: Mutating commands since the last episode boundary, in order;
        #: entry = (cmd, per-worker payload list or None).
        self._journal: List[Tuple[str, Optional[list]]] = []
        self.total_restarts = 0
        self._consecutive_restarts: dict = {}
        super().__init__(
            spec, n_envs, workers=workers, timeout=timeout,
            start_method=start_method,
        )

    # -- journal maintenance -------------------------------------------------
    def _shard(self, states: Sequence[dict]) -> List[list]:
        return [[states[i] for i in chunk] for chunk in self._chunks]

    def reset(self) -> np.ndarray:
        # Snapshot every env's RNG stream *before* reset consumes it:
        # [set_rng(snapshot), reset, step...] replayed on a fresh worker
        # reconstructs its exact mid-episode state.  The snapshot also
        # truncates the journal, bounding replay cost to one episode.
        snapshot = self.get_rng_states()
        self._journal = [("set_rng", self._shard(snapshot))]
        return super().reset()

    # -- crash-aware command fan-out ----------------------------------------
    def _broadcast(self, cmd: str, payloads=None):
        """Send to every worker, then collect; recover any crash inline.

        A crash while collecting worker ``w``'s reply only re-drives
        worker ``w`` — the other workers' results (already computed,
        sitting in their pipes) are consumed untouched, so no env ever
        steps twice.
        """
        for w in range(self.n_workers):
            self._supervised_send(w, cmd, payloads)
        replies = [
            self._supervised_recv(w, cmd, payloads)
            for w in range(self.n_workers)
        ]
        if cmd in _JOURNALED:
            self._journal.append((cmd, payloads))
        return replies

    def _payload_for(self, w: int, payloads) -> Any:
        return None if payloads is None else payloads[w]

    def _supervised_send(self, w: int, cmd: str, payloads) -> None:
        while True:
            try:
                self._send(w, cmd, self._payload_for(w, payloads))
                return
            except WorkerCrashError as exc:
                self._restart_worker(w, exc)

    def _supervised_recv(self, w: int, cmd: str, payloads):
        resend = False
        while True:
            try:
                if resend:
                    self._send(w, cmd, self._payload_for(w, payloads))
                return self._recv(w)
            except WorkerCrashError as exc:
                self._restart_worker(w, exc)
                # The respawned worker is synced up to (excluding) the
                # in-flight command; re-issue it and collect normally.
                resend = True

    # -- the supervision loop ------------------------------------------------
    def _restart_worker(self, w: int, cause: WorkerCrashError) -> None:
        """Reap, back off, respawn and resync worker ``w``.

        Raises :class:`SupervisionExhaustedError` once the total restart
        budget is spent; a respawned worker that dies again during its
        replay consumes further budget (bounded recursion).
        """
        cfg = self.supervisor
        if self.total_restarts >= cfg.max_restarts:
            raise SupervisionExhaustedError(
                f"vec-env worker {w} still failing after "
                f"{self.total_restarts} restarts (budget {cfg.max_restarts}); "
                f"last crash: {cause}"
            ) from cause
        self.total_restarts += 1
        consecutive = self._consecutive_restarts.get(w, 0) + 1
        self._consecutive_restarts[w] = consecutive
        backoff = cfg.backoff_s(consecutive)
        if backoff > 0:
            time.sleep(backoff)
        self._reap_worker(w)
        self._spawn_worker(w)
        try:
            self._recv(w)  # the ("ready", dims) handshake
            self._replay_journal(w)
        except WorkerCrashError as exc:
            self._restart_worker(w, exc)
            return
        tel = get_telemetry()
        if tel.enabled:
            tel.on_worker_restart(
                worker=w,
                pid=self._procs[w].pid,
                envs=list(self._chunks[w]),
                restarts_total=self.total_restarts,
                restarts_worker=consecutive,
                backoff_s=backoff,
                replayed_commands=len(self._journal),
                cause=str(cause).splitlines()[0],
            )

    def _replay_journal(self, w: int) -> None:
        """Re-drive worker ``w`` through every journaled command."""
        for cmd, payloads in self._journal:
            self._send(w, cmd, self._payload_for(w, payloads))
            self._recv(w)

    def note_recovered(self) -> None:
        """Reset the consecutive-restart counters (e.g. after an episode
        completes cleanly); the *total* budget keeps counting."""
        self._consecutive_restarts.clear()
