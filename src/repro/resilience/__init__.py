"""repro.resilience — the self-healing execution layer.

Long DRL-over-FL training runs only pay off if they survive real-world
failures; this package turns the three fatal interruption classes into
recoverable ones:

* :mod:`repro.resilience.supervisor` — :class:`SupervisedVecEnv`
  respawns crashed/hung subprocess env workers, resyncs their RNG
  streams and replays the in-flight step, keeping the rollout stream
  bit-identical to an uncrashed run (bounded restart budget with
  exponential backoff; :class:`SupervisionExhaustedError` escalation);
* :mod:`repro.resilience.checkpoint` — rotation of fsync-durable,
  sha256-checksummed checkpoint generations with corruption fallback
  (:class:`CheckpointManager`, :func:`load_checkpoint_with_fallback`);
* :mod:`repro.resilience.drain` — :class:`GracefulDrain` converts
  SIGTERM/SIGINT into a cooperative finish-checkpoint-and-exit;
* :mod:`repro.resilience.soak` — the ``repro soak`` chaos harness:
  kill/drain a real training process (or SIGKILL individual workers)
  at randomized points, resume, and assert the final artifacts are
  bit-identical to an uninterrupted run.

Layering: sits above ``repro.parallel``/``repro.utils``/``repro.obs``
and below the CLI; ``repro.core`` reaches into it lazily (checkpoint
fallback, supervision) so the default code path stays import-light.
"""

from repro.resilience.checkpoint import (
    CheckpointManager,
    load_checkpoint_with_fallback,
)
from repro.resilience.drain import GracefulDrain
from repro.resilience.soak import (
    CrashSoakResult,
    SoakConfig,
    SoakResult,
    run_crash_soak,
    run_soak,
)
from repro.resilience.supervisor import (
    SupervisedVecEnv,
    SupervisionExhaustedError,
    SupervisorConfig,
)
from repro.utils.serialization import CheckpointCorruptError

__all__ = [
    # supervision
    "SupervisedVecEnv",
    "SupervisorConfig",
    "SupervisionExhaustedError",
    # durable checkpoints
    "CheckpointManager",
    "CheckpointCorruptError",
    "load_checkpoint_with_fallback",
    # graceful drain
    "GracefulDrain",
    # soak harness
    "SoakConfig",
    "SoakResult",
    "CrashSoakResult",
    "run_soak",
    "run_crash_soak",
]
