"""Kill/resume soak harness: prove recovery is bit-exact, end to end.

Two complementary chaos modes:

* **Process-level** (:func:`run_soak`): run ``repro train`` as a real
  subprocess, kill it (SIGKILL) or drain it (SIGTERM) at randomized
  points, resume from the surviving checkpoint, repeat, and finally
  compare the trained agent — array by array — against an uninterrupted
  baseline run with the same seed.  Exercises the full durability chain:
  fsync-before-rename checkpoints, sha256 verification, rotation
  fallback, checkpoint/resume RNG capture and the SIGTERM drain path.

* **Worker-level** (:func:`run_crash_soak`): in-process, roll a
  :class:`~repro.resilience.SupervisedVecEnv` through a deterministic
  action sequence while SIGKILLing randomly chosen workers between
  steps, and compare the full observation/reward stream against a
  :class:`~repro.parallel.SerialVecEnv` reference.  Exercises worker
  respawn, journal replay and RNG resync.

Both modes draw their chaos (kill times, victims) from a seeded
generator, so a failing soak is replayable.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import console
from repro.utils.rng import SeedLike, as_generator
from repro.utils.serialization import load_npz_state


@dataclass
class SoakConfig:
    """Parameters of one process-level kill/resume soak."""

    episodes: int = 8
    checkpoint_every: int = 2
    checkpoint_keep: int = 3
    #: Interruptions to attempt before the final run-to-completion.
    kills: int = 2
    #: "kill" => SIGKILL (crash), "term" => SIGTERM (graceful drain).
    mode: str = "kill"
    #: Training seed (shared by baseline and soaked run).
    seed: int = 0
    algorithm: str = "ppo"
    num_envs: int = 1
    workers: int = 0
    devices: Optional[int] = 2
    episode_length: Optional[int] = 8
    #: After the first checkpoint exists, wait uniform(0, spread) seconds
    #: before delivering the signal — the randomized kill point.
    kill_spread_s: float = 2.0
    #: Hard per-subprocess deadline.
    run_timeout_s: float = 600.0

    def validate(self) -> "SoakConfig":
        if self.episodes <= 0:
            raise ValueError("episodes must be positive")
        if self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if self.kills < 0:
            raise ValueError("kills must be non-negative")
        if self.mode not in ("kill", "term"):
            raise ValueError(f"mode must be 'kill' or 'term', got {self.mode!r}")
        if self.kill_spread_s < 0:
            raise ValueError("kill_spread_s must be non-negative")
        return self


@dataclass
class SoakResult:
    """Outcome of a soak: bit-exactness verdict plus chaos bookkeeping."""

    ok: bool
    kills_delivered: int
    resumes: int
    compared_files: List[str] = field(default_factory=list)
    mismatches: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"soak {verdict}: {self.kills_delivered} interruption(s), "
            f"{self.resumes} resume(s), "
            f"{len(self.compared_files)} artifact(s) compared bit-exactly"
        ]
        lines += [f"  mismatch: {m}" for m in self.mismatches]
        lines += [f"  note: {n}" for n in self.notes]
        return "\n".join(lines)


def _train_argv(
    config: SoakConfig, out: str, resume: Optional[str], python: str
) -> List[str]:
    argv = [
        python, "-m", "repro", "-q", "train",
        "--episodes", str(config.episodes),
        "--seed", str(config.seed),
        "--algorithm", config.algorithm,
        "--out", out,
        "--checkpoint-every", str(config.checkpoint_every),
        "--checkpoint-keep", str(config.checkpoint_keep),
        "--num-envs", str(config.num_envs),
        "--workers", str(config.workers),
    ]
    if config.devices is not None:
        argv += ["--devices", str(config.devices)]
    if config.episode_length is not None:
        argv += ["--episode-length", str(config.episode_length)]
    if resume is not None:
        argv += ["--resume", resume]
    return argv


def _run_to_completion(argv: Sequence[str], timeout_s: float) -> None:
    proc = subprocess.run(
        list(argv), timeout=timeout_s,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"training subprocess failed (exit {proc.returncode}):\n"
            f"{proc.stdout.decode(errors='replace')[-2000:]}"
        )


def _interrupt_once(
    argv: Sequence[str],
    ckpt: str,
    config: SoakConfig,
    rng: np.random.Generator,
) -> Tuple[bool, bool]:
    """Start a run, signal it at a randomized point.

    Returns ``(delivered, finished_cleanly)`` — the run may legitimately
    finish before the signal lands.
    """
    sig = signal.SIGKILL if config.mode == "kill" else signal.SIGTERM
    # Randomize the kill point relative to checkpoint availability so
    # interruptions land before, on, and between checkpoint writes.
    delay_s = float(rng.uniform(0.0, config.kill_spread_s))
    proc = subprocess.Popen(
        list(argv), stdout=subprocess.PIPE, stderr=subprocess.STDOUT
    )
    try:
        deadline = time.monotonic() + config.run_timeout_s
        # Phase 1: wait for the first checkpoint generation (otherwise a
        # too-early kill tests nothing but process startup).
        while (
            not os.path.exists(ckpt)
            and proc.poll() is None
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        # Phase 2: the randomized dwell.
        end_dwell = time.monotonic() + delay_s
        while proc.poll() is None and time.monotonic() < min(end_dwell, deadline):
            time.sleep(0.01)
        if proc.poll() is not None:
            return False, proc.returncode == 0
        proc.send_signal(sig)
        proc.wait(timeout=config.run_timeout_s)
        return True, False
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30.0)
        if proc.stdout is not None:
            proc.stdout.close()


def compare_npz(path_a: str, path_b: str) -> List[str]:
    """Key-by-key bit-exact comparison of two .npz state files."""
    a = load_npz_state(path_a, verify=False)
    b = load_npz_state(path_b, verify=False)
    problems = []
    for key in sorted(set(a) | set(b)):
        if key not in a or key not in b:
            problems.append(f"{key}: present in only one file")
        elif not np.array_equal(np.asarray(a[key]), np.asarray(b[key])):
            problems.append(f"{key}: arrays differ")
    return problems


def run_soak(
    config: SoakConfig,
    out_dir: str,
    rng: SeedLike = 0,
    python: Optional[str] = None,
) -> SoakResult:
    """Process-level kill/resume soak; see the module docstring.

    Writes everything under ``out_dir`` (created if needed) and returns
    a :class:`SoakResult` whose ``ok`` asserts that the soaked run's
    final agent is bit-identical to the uninterrupted baseline's.
    """
    config = config.validate()
    rng = as_generator(rng)
    python = python or sys.executable
    os.makedirs(out_dir, exist_ok=True)
    baseline_out = os.path.join(out_dir, "baseline-agent.npz")
    soak_out = os.path.join(out_dir, "soak-agent.npz")
    soak_ckpt = soak_out + ".ckpt"

    console.info("soak: baseline (uninterrupted) run")
    _run_to_completion(
        _train_argv(config, baseline_out, None, python), config.run_timeout_s
    )

    kills_delivered = 0
    resumes = 0
    notes: List[str] = []
    finished_early = False
    for attempt in range(config.kills):
        resume = soak_ckpt if os.path.exists(soak_ckpt) else None
        if resume is not None:
            resumes += 1
        argv = _train_argv(config, soak_out, resume, python)
        delivered, finished = _interrupt_once(argv, soak_ckpt, config, rng)
        if delivered:
            kills_delivered += 1
            console.info(
                f"soak: interruption {attempt + 1}/{config.kills} delivered "
                f"({config.mode})"
            )
        if finished:
            finished_early = True
            notes.append(
                f"run finished before interruption {attempt + 1} landed"
            )
            break

    if not finished_early:
        resume = soak_ckpt if os.path.exists(soak_ckpt) else None
        if resume is not None:
            resumes += 1
        console.info("soak: final resume to completion")
        _run_to_completion(
            _train_argv(config, soak_out, resume, python), config.run_timeout_s
        )

    mismatches = compare_npz(baseline_out, soak_out)
    compared = [baseline_out, soak_out]
    return SoakResult(
        ok=not mismatches,
        kills_delivered=kills_delivered,
        resumes=resumes,
        compared_files=compared,
        mismatches=mismatches,
        notes=notes,
    )


@dataclass
class CrashSoakResult:
    """Outcome of an in-process worker-crash soak."""

    ok: bool
    restarts: int
    kills_delivered: int
    mismatches: List[str] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"crash soak {verdict}: {self.kills_delivered} worker kill(s), "
            f"{self.restarts} supervised restart(s), rollout stream "
            f"{'bit-identical' if self.ok else 'DIVERGED'}"
        ]
        lines += [f"  mismatch: {m}" for m in self.mismatches]
        return "\n".join(lines)


def run_crash_soak(
    spec=None,
    n_envs: int = 4,
    workers: int = 2,
    episodes: int = 2,
    steps_per_episode: int = 5,
    kills: int = 2,
    rng: SeedLike = 0,
    timeout: float = 60.0,
) -> CrashSoakResult:
    """Worker-crash soak: SIGKILL workers mid-rollout, assert bit-exactness.

    Rolls a :class:`~repro.resilience.SupervisedVecEnv` through a
    deterministic open-loop action sequence, killing ``kills`` randomly
    chosen workers at randomly chosen steps, and compares every
    observation, reward and final RNG state against an uncrashed
    :class:`~repro.parallel.SerialVecEnv` reference.
    """
    from repro.parallel.vec_env import SerialVecEnv
    from repro.resilience.supervisor import SupervisedVecEnv, SupervisorConfig

    rng = as_generator(rng)
    if spec is None:
        spec = _default_crash_spec(steps_per_episode)
    total_steps = episodes * steps_per_episode
    # Chaos plan: (flat step index -> worker to kill), drawn up front so
    # the action stream below consumes an independent generator.
    kill_steps = sorted(
        int(s) for s in rng.choice(total_steps, size=min(kills, total_steps),
                                   replace=False)
    )
    kill_victims = [int(v) for v in rng.integers(0, workers, size=len(kill_steps))]
    action_seed = int(rng.integers(0, 2**31 - 1))

    def rollout(venv, chaos: bool) -> Tuple[list, list, list, int]:
        arng = np.random.default_rng(action_seed)
        all_obs, all_rew = [], []
        delivered = 0
        flat = 0
        pending = list(zip(kill_steps, kill_victims))
        for _ in range(episodes):
            all_obs.append(venv.reset())
            for _ in range(steps_per_episode):
                if chaos and pending and pending[0][0] == flat:
                    _, victim = pending.pop(0)
                    os.kill(venv._procs[victim].pid, signal.SIGKILL)
                    delivered += 1
                actions = arng.uniform(-1, 1, (venv.n_envs, venv.act_dim))
                obs, rew, dones, infos = venv.step(actions)
                all_obs.append(obs)
                all_rew.append(rew)
                flat += 1
        return all_obs, all_rew, venv.get_rng_states(), delivered

    with SerialVecEnv(spec, n_envs) as ref:
        ref_obs, ref_rew, ref_rng, _ = rollout(ref, chaos=False)
    supervisor = SupervisorConfig(
        max_restarts=max(4, 2 * kills), backoff_base_s=0.01, backoff_max_s=0.1
    )
    with SupervisedVecEnv(
        spec, n_envs, workers=workers, timeout=timeout, supervisor=supervisor
    ) as venv:
        obs, rew, rng_states, delivered = rollout(venv, chaos=True)
        restarts = venv.total_restarts

    mismatches: List[str] = []
    if not all(np.array_equal(a, b) for a, b in zip(ref_obs, obs)):
        mismatches.append("observation stream differs")
    if not all(np.array_equal(a, b) for a, b in zip(ref_rew, rew)):
        mismatches.append("reward stream differs")
    if ref_rng != rng_states:
        mismatches.append("final per-env RNG states differ")
    if restarts < delivered:
        mismatches.append(
            f"only {restarts} restart(s) recorded for {delivered} kill(s)"
        )
    return CrashSoakResult(
        ok=not mismatches,
        restarts=restarts,
        kills_delivered=delivered,
        mismatches=mismatches,
    )


def _default_crash_spec(episode_length: int):
    """A small, fast env spec for the worker-crash soak."""
    from dataclasses import replace

    from repro.devices.fleet import FleetConfig
    from repro.experiments.presets import TESTBED_PRESET, build_env_spec

    preset = replace(
        TESTBED_PRESET,
        trace_slots=200,
        episode_length=episode_length,
        n_devices=2,
        fleet=FleetConfig(n_devices=2),
    )
    return build_env_spec(preset, seed=0)
