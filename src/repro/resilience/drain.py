"""Graceful drain on SIGTERM/SIGINT.

:class:`GracefulDrain` is a context manager that converts termination
signals into a cooperative stop flag.  The first signal requests a
drain — the training loop finishes its current update/episode batch,
writes a final checkpoint and exits cleanly; a second signal escalates
to an immediate :class:`KeyboardInterrupt` (the operator insists).

The handler itself only flips flags (async-signal-safe by construction:
no allocation, no I/O); all reporting — the ``drain`` telemetry event,
resume instructions on the console — happens in the normal control flow
of whoever observes the flag.

Usage::

    with GracefulDrain() as drain:
        trainer.train(stop=drain)      # drain() -> True once signaled
    if drain.requested:
        ...write checkpoint / print resume hint...
"""

from __future__ import annotations

import signal
import threading
from types import FrameType
from typing import Dict, Optional, Tuple


class GracefulDrain:
    """Cooperative stop flag armed by termination signals.

    Callable (returns whether a drain was requested) so it can be passed
    directly as a ``stop`` predicate.  Outside the main thread — where
    Python forbids installing signal handlers — it degrades to a manual
    flag (:meth:`request`) instead of failing, so library code can use it
    unconditionally.
    """

    def __init__(
        self,
        signals: Tuple[int, ...] = (signal.SIGTERM, signal.SIGINT),
    ) -> None:
        self.signals = tuple(signals)
        self.requested = False
        #: The signal number that triggered the drain (None until then).
        self.signum: Optional[int] = None
        self._previous: Dict[int, object] = {}
        self._installed = False

    def __call__(self) -> bool:
        return self.requested

    def request(self, signum: Optional[int] = None) -> None:
        """Flip the drain flag programmatically (tests, manual drains)."""
        if not self.requested:
            self.requested = True
            self.signum = signum

    def _handle(self, signum: int, frame: Optional[FrameType]) -> None:
        if self.requested:
            # Second signal: the operator wants out *now*.
            raise KeyboardInterrupt(f"second signal {signum} during drain")
        self.request(signum)

    def __enter__(self) -> "GracefulDrain":
        if threading.current_thread() is threading.main_thread():
            for signum in self.signals:
                self._previous[signum] = signal.getsignal(signum)
                signal.signal(signum, self._handle)
            self._installed = True
        return self

    def __exit__(self, *exc: object) -> None:
        if self._installed:
            for signum, previous in self._previous.items():
                signal.signal(signum, previous)  # type: ignore[arg-type]
            self._previous.clear()
            self._installed = False

    def describe(self) -> str:
        """Human-readable cause, e.g. ``"SIGTERM"`` (console messages)."""
        if self.signum is None:
            return "drain requested"
        try:
            return signal.Signals(self.signum).name
        except ValueError:
            return f"signal {self.signum}"
