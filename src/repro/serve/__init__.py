"""Online allocation service: serve a trained policy over TCP.

The training side of this repository ends at a checkpoint; this package
is the deployment side.  ``repro export-policy`` distills a checkpoint
into a frozen forward-only :class:`~repro.serve.artifact.PolicyArtifact`,
a :class:`~repro.serve.registry.PolicyRegistry` hot-reloads versioned
artifacts with load-validate-swap semantics, a
:class:`~repro.serve.engine.BatchedInferenceEngine` coalesces concurrent
requests into single vectorized forwards, and
:class:`~repro.serve.server.AllocationServer` fronts it all with a
JSON-lines TCP protocol, explicit load shedding and graceful drain.
``repro serve-bench`` (:mod:`repro.serve.loadgen`) load-tests the result.

The one invariant everything here leans on: inference runs the
batch-stable kernel, so a served response is bit-identical to the same
state evaluated in-process — at any micro-batch size.
"""

from repro.serve.artifact import (
    ARTIFACT_SCHEMA_VERSION,
    PolicyArtifact,
    detect_policy_kind,
    export_policy,
    infer_hidden,
)
from repro.serve.engine import (
    BatchedInferenceEngine,
    DeadlineExceededError,
    EngineClosedError,
    EngineOverloadedError,
    InferenceTicket,
)
from repro.serve.loadgen import LoadConfig, LoadReport, request_once, run_load
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    encode_response,
    error_response,
    ok_response,
)
from repro.serve.registry import PolicyHandle, PolicyRegistry
from repro.serve.server import AllocationServer, ServeConfig

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "AllocationServer",
    "BatchedInferenceEngine",
    "DeadlineExceededError",
    "ERROR_CODES",
    "EngineClosedError",
    "EngineOverloadedError",
    "InferenceTicket",
    "LoadConfig",
    "LoadReport",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "PolicyArtifact",
    "PolicyHandle",
    "PolicyRegistry",
    "ProtocolError",
    "ServeConfig",
    "decode_request",
    "detect_policy_kind",
    "encode_response",
    "error_response",
    "export_policy",
    "infer_hidden",
    "ok_response",
    "request_once",
    "run_load",
]
