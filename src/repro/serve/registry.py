"""Policy registry: versioned artifacts with atomic hot-reload.

A registry watches one artifact file *or* a directory of versioned
artifacts (``policy-v0001.npz``, ``policy-v0002.npz``, ...; any
``*.npz`` names sort lexicographically, newest last).  Reload follows
**load-validate-swap**: the candidate is fully loaded and probe-validated
*before* the serving handle moves, so a corrupt or truncated new version
raises :class:`~repro.utils.serialization.CheckpointCorruptError` — with
a ``checkpoint_corrupt`` telemetry event, mirroring
:mod:`repro.resilience.checkpoint` — while the previous artifact keeps
serving untouched.  The swap itself is a single reference assignment
under a lock, so in-flight micro-batches finish on whichever version
they grabbed and the next batch sees the new one: hot reload never
drops a request.

At *startup* (no current version yet) the registry walks candidates
newest-first, skipping corrupt generations exactly like
:func:`~repro.resilience.checkpoint.load_checkpoint_with_fallback`
walks a rotation chain.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.obs import get_telemetry
from repro.serve.artifact import PolicyArtifact
from repro.utils.serialization import CHECKSUM_SUFFIX, CheckpointCorruptError


@dataclass(frozen=True)
class PolicyHandle:
    """An immutable (artifact, identity) pair handed to the engine."""

    artifact: PolicyArtifact
    path: str
    version: str


def _is_artifact_file(name: str) -> bool:
    """A publishable artifact: ``*.npz``, not a temp/sidecar/rotation file."""
    return (
        name.endswith(".npz")
        and not name.endswith(".tmp")
        and not name.endswith(CHECKSUM_SUFFIX)
    )


class PolicyRegistry:
    """Serves the newest *good* policy artifact from a path.

    ``loader`` is injectable for tests; it must raise
    :class:`CheckpointCorruptError` for anything unservable.
    """

    def __init__(
        self,
        path: str,
        loader: Callable[[str], PolicyArtifact] = PolicyArtifact.load,
    ) -> None:
        self.path = str(path)
        self._loader = loader
        self._lock = threading.Lock()
        self._current: Optional[PolicyHandle] = None

    # -- discovery ----------------------------------------------------------
    def candidates(self) -> List[str]:
        """Servable artifact paths, oldest first (newest last)."""
        if os.path.isdir(self.path):
            names = sorted(
                n for n in os.listdir(self.path) if _is_artifact_file(n)
            )
            return [os.path.join(self.path, n) for n in names]
        return [self.path] if os.path.exists(self.path) else []

    # -- serving handle -----------------------------------------------------
    @property
    def current(self) -> PolicyHandle:
        """The live handle; loads initially on first access.

        Loading (disk I/O, probe validation, telemetry) runs *outside*
        the lock — only the reference check and swap are locked, so a
        slow or corrupt artifact never stalls concurrent readers
        (REP104/REP105).  Two first-access racers may both load; the
        first swap wins and both return the same handle.
        """
        with self._lock:
            handle = self._current
        if handle is not None:
            return handle
        return self._ensure_loaded()

    def _ensure_loaded(self) -> PolicyHandle:
        """Initial load outside the lock, first-swap-wins under it."""
        handle = self._initial_load()
        with self._lock:
            if self._current is None:
                self._current = handle
            return self._current

    def _initial_load(self) -> PolicyHandle:
        """Newest-first walk with corruption fallback (startup only)."""
        tel = get_telemetry()
        candidates = self.candidates()
        if not candidates:
            raise FileNotFoundError(
                f"no policy artifact at {self.path} (expected *.npz)"
            )
        errors: List[str] = []
        for candidate in reversed(candidates):
            try:
                artifact = self._loader(candidate)
            except CheckpointCorruptError as exc:
                errors.append(str(exc))
                if tel.enabled:
                    tel.on_checkpoint_corrupt(
                        path=candidate, error=str(exc).splitlines()[0]
                    )
                continue
            return PolicyHandle(artifact, candidate, artifact.version)
        raise CheckpointCorruptError(
            "every policy artifact is corrupt:\n" + "\n".join(errors)
        )

    # -- hot reload ---------------------------------------------------------
    def reload(self) -> PolicyHandle:
        """Load-validate-swap to the newest candidate.

        Returns the (possibly unchanged) live handle.  A corrupt newest
        candidate raises :class:`CheckpointCorruptError` *after* emitting
        telemetry, and the previous handle keeps serving.

        Load-validate runs outside the lock (the injectable loader and
        the telemetry hooks are foreign code — REP104); only the final
        swap is locked, one atomic reference assignment.
        """
        with self._lock:
            current = self._current
        if current is None:
            return self._ensure_loaded()
        candidates = self.candidates()
        if not candidates:
            raise FileNotFoundError(
                f"no policy artifact at {self.path} (expected *.npz)"
            )
        newest = candidates[-1]
        try:
            artifact = self._loader(newest)  # load + validate ...
        except CheckpointCorruptError as exc:
            tel = get_telemetry()
            if tel.enabled:
                tel.on_checkpoint_corrupt(
                    path=newest, error=str(exc).splitlines()[0]
                )
            raise
        handle = PolicyHandle(artifact, newest, artifact.version)
        with self._lock:
            self._current = handle  # ... then swap (atomic assignment)
        return handle

    def version(self) -> str:
        """The live artifact's identity string."""
        return self.current.version
