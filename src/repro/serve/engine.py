"""Micro-batched inference engine with admission control.

One worker thread drains a bounded request queue: it takes the oldest
waiting request, lingers up to ``max_wait_ms`` for co-arriving requests
(up to ``max_batch``), stacks their states and runs **one** vectorized
policy forward for the whole batch — the serving-side mirror of
:class:`~repro.parallel.collector.VecRolloutCollector`'s
one-forward-per-step design.  Because the forward is the batch-stable
inference kernel, coalescing requests never changes any response.

Admission control is the queue bound: when ``max_queue`` requests are
already waiting, :meth:`submit` fails *immediately* with
:class:`EngineOverloadedError` so callers shed load with an explicit
``overloaded`` response instead of stacking unbounded latency.  Each
request may carry a deadline; requests that expire while queued are
answered with :class:`DeadlineExceededError` without wasting a forward
on them.

All timing uses monotonic duration clocks (never wall time), and every
request flows through counters/histograms on an engine-owned
:class:`~repro.obs.metrics.MetricsRegistry`; per-batch ``serve_batch``
events go to the telemetry sink when one is installed.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.obs import MetricsRegistry, get_telemetry


class EngineOverloadedError(RuntimeError):
    """The admission queue is full; the request was shed, not queued."""


class EngineClosedError(RuntimeError):
    """The engine is draining or closed and accepts no new requests."""


class DeadlineExceededError(RuntimeError):
    """The request's deadline expired before inference ran."""


class InferenceTicket:
    """A pending request's handle; :meth:`result` blocks for the answer."""

    __slots__ = ("state", "deadline", "enqueued_at", "_event", "_value",
                 "_version", "_error")

    def __init__(self, state: np.ndarray, deadline: Optional[float],
                 enqueued_at: float) -> None:
        self.state = state
        #: Absolute monotonic deadline (None = no deadline).
        self.deadline = deadline
        self.enqueued_at = enqueued_at
        self._event = threading.Event()
        self._value: Optional[np.ndarray] = None
        self._version = ""
        self._error: Optional[BaseException] = None

    def _resolve(self, value: np.ndarray, version: str) -> None:
        self._value = value
        self._version = version
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Tuple[np.ndarray, str]:
        """Wait for ``(frequencies, policy_version)``; raises on failure."""
        if not self._event.wait(timeout):
            raise TimeoutError("inference did not complete in time")
        if self._error is not None:
            raise self._error
        assert self._value is not None
        return self._value, self._version


#: The engine's policy: a state batch in, (frequency batch, version) out.
InferFn = Callable[[np.ndarray], Tuple[np.ndarray, str]]


class BatchedInferenceEngine:
    """Queue + micro-batching worker around a vectorized policy forward."""

    def __init__(
        self,
        infer: InferFn,
        max_batch: int = 16,
        max_wait_ms: float = 2.0,
        max_queue: int = 256,
        default_deadline_ms: Optional[float] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._infer = infer
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.max_queue = int(max_queue)
        self.default_deadline_s: Optional[float] = (
            None if default_deadline_ms is None
            else float(default_deadline_ms) / 1000.0
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._queue: List[InferenceTicket] = []
        # Batch-assembly scratch, worker-thread-only: rows are copied in
        # before every forward, so the buffer never leaks request state
        # between batches.  The infer fn must not retain its argument
        # past the call (the bundled policy forwards never do).
        self._batch_buf: Optional[np.ndarray] = None
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._stopping = False
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-engine", daemon=True
        )
        self._worker.start()

    # -- submission ---------------------------------------------------------
    def submit(
        self,
        state: np.ndarray,
        deadline_ms: Optional[float] = None,
    ) -> InferenceTicket:
        """Enqueue one state; sheds immediately when the queue is full."""
        now = time.monotonic()
        deadline_s = (
            float(deadline_ms) / 1000.0 if deadline_ms is not None
            else self.default_deadline_s
        )
        ticket = InferenceTicket(
            np.asarray(state, dtype=np.float64).ravel(),
            None if deadline_s is None else now + deadline_s,
            now,
        )
        # Decide under the lock, report after releasing it: the shed
        # telemetry event goes through the sink's own lock, and foreign
        # locks must never be taken while holding the engine's (REP104).
        shed_depth: Optional[int] = None
        with self._nonempty:
            if self._stopping:
                raise EngineClosedError("engine is draining; request refused")
            if len(self._queue) >= self.max_queue:
                shed_depth = len(self._queue)
            else:
                self._queue.append(ticket)
                self.metrics.counter("serve.requests").inc()
                self.metrics.gauge("serve.queue_depth").set(len(self._queue))
                self._nonempty.notify()
        if shed_depth is not None:
            self.metrics.counter("serve.shed").inc()
            tel = get_telemetry()
            if tel.enabled:
                tel.event("serve_shed", queued=shed_depth)
            raise EngineOverloadedError(
                f"admission queue full ({self.max_queue} waiting)"
            )
        return ticket

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- worker -------------------------------------------------------------
    def _take_batch(self) -> List[InferenceTicket]:
        """Block for the first request, linger for co-arrivals, pop <= max."""
        with self._nonempty:
            while not self._queue and not self._stopping:
                self._nonempty.wait()
            if not self._queue:
                return []
            # Linger: give micro-batches a chance to form, bounded by the
            # latency budget.  Skipped when a full batch is already there.
            linger_until = time.monotonic() + self.max_wait_s
            while (
                len(self._queue) < self.max_batch
                and not self._stopping
            ):
                remaining = linger_until - time.monotonic()
                if remaining <= 0:
                    break
                self._nonempty.wait(remaining)
            batch = self._queue[: self.max_batch]
            del self._queue[: len(batch)]
            self.metrics.gauge("serve.queue_depth").set(len(self._queue))
            return batch

    def _run(self) -> None:
        while True:
            batch = self._take_batch()
            if not batch:
                if self._stopping:
                    return
                continue
            self._process(batch)
            with self._lock:
                if self._stopping and not self._queue:
                    return

    def _process(self, batch: List[InferenceTicket]) -> None:
        now = time.monotonic()
        live: List[InferenceTicket] = []
        for ticket in batch:
            if ticket.deadline is not None and now > ticket.deadline:
                self.metrics.counter("serve.expired").inc()
                ticket._fail(DeadlineExceededError(
                    "deadline expired before inference"
                ))
            else:
                live.append(ticket)
        if not live:
            return
        # Assemble the batch into the reused scratch (only this worker
        # thread touches it); a [:k] view keeps the forward's input
        # C-contiguous and bit-identical to a freshly stacked array.
        dim = live[0].state.shape[0]
        buf = self._batch_buf
        if buf is None or buf.shape[0] < len(live) or buf.shape[1] != dim:
            buf = np.empty((max(self.max_batch, len(live)), dim), dtype=np.float64)
            self._batch_buf = buf
        states = buf[: len(live)]
        for i, ticket in enumerate(live):
            states[i] = ticket.state
        t0 = time.monotonic()
        try:
            outputs, version = self._infer(states)
        except Exception as exc:  # noqa: BLE001 - worker must survive any policy failure
            self.metrics.counter("serve.errors").inc(len(live))
            for ticket in live:
                ticket._fail(exc)
            return
        infer_ms = (time.monotonic() - t0) * 1000.0
        outputs = np.asarray(outputs)
        for i, ticket in enumerate(live):
            wait_ms = (t0 - ticket.enqueued_at) * 1000.0
            self.metrics.histogram("serve.wait_ms").observe(wait_ms)
            ticket._resolve(outputs[i], version)
        self.metrics.counter("serve.completed").inc(len(live))
        self.metrics.histogram("serve.batch_size").observe(float(len(live)))
        self.metrics.histogram("serve.infer_ms").observe(infer_ms)
        tel = get_telemetry()
        if tel.enabled:
            tel.on_serve_batch(
                batch_size=len(live),
                infer_ms=infer_ms,
                policy_version=version,
            )

    # -- lifecycle ----------------------------------------------------------
    def close(self, drain: bool = True, timeout: Optional[float] = 10.0) -> None:
        """Stop the worker; with ``drain`` the queue empties first.

        After close, :meth:`submit` raises :class:`EngineClosedError`.
        Without ``drain``, still-queued requests fail with the same error.
        """
        with self._nonempty:
            if self._closed:
                return
            self._stopping = True
            if not drain:
                for ticket in self._queue:
                    ticket._fail(EngineClosedError("engine closed"))
                self._queue.clear()
            self._nonempty.notify_all()
        self._worker.join(timeout)
        with self._lock:
            self._closed = True

    def __enter__(self) -> "BatchedInferenceEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
