"""Threaded TCP allocation server with admission control and drain.

:class:`AllocationServer` glues the pieces together: a
:class:`~repro.serve.registry.PolicyRegistry` owns *which* policy
serves, a :class:`~repro.serve.engine.BatchedInferenceEngine` owns
*how* states become frequencies, and a stdlib
:class:`socketserver.ThreadingTCPServer` owns the sockets — one daemon
thread per connection, requests pipelined over JSON lines
(:mod:`repro.serve.protocol`).

Load shedding is explicit: when the engine's admission queue is full a
request gets an ``overloaded`` error immediately instead of queueing
into unbounded latency.  Shutdown is graceful: :meth:`run_until` takes
any stop predicate (typically a
:class:`~repro.resilience.drain.GracefulDrain`, so SIGTERM/SIGINT land
here), after which the server stops accepting work (``draining``
errors), the engine drains every in-flight request, and only then do
the sockets close.
"""

from __future__ import annotations

import socketserver
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.obs import get_telemetry
from repro.serve.engine import (
    BatchedInferenceEngine,
    DeadlineExceededError,
    EngineClosedError,
    EngineOverloadedError,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    encode_response,
    error_response,
    ok_response,
    read_line,
)
from repro.serve.registry import PolicyRegistry
from repro.utils.serialization import CheckpointCorruptError


@dataclass
class ServeConfig:
    """Tunables of one :class:`AllocationServer`."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read the real one from ``address``.
    port: int = 0
    max_batch: int = 16
    max_wait_ms: float = 2.0
    max_queue: int = 256
    #: Default per-request deadline (None = wait as long as it takes).
    deadline_ms: Optional[float] = None
    #: Seconds to wait for in-flight work during shutdown.
    drain_grace_s: float = 10.0


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines, write response lines, in order."""

    server: "_TcpServer"

    def handle(self) -> None:
        owner = self.server.owner
        while True:
            try:
                line = read_line(self.rfile)
            except (ProtocolError, OSError):
                return
            if not line:
                return
            if not line.strip():
                continue
            try:
                response = owner.handle_line(line)
            except Exception as exc:  # noqa: BLE001 - never kill the connection thread
                response = error_response("unknown", "internal", str(exc))
            try:
                self.wfile.write(encode_response(response))
                self.wfile.flush()
            except OSError:
                return


class _TcpServer(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], owner: "AllocationServer"):
        self.owner = owner
        super().__init__(address, _Handler)


class AllocationServer:
    """The online allocation service: registry + engine + TCP front."""

    def __init__(
        self,
        registry: PolicyRegistry,
        config: Optional[ServeConfig] = None,
        on_serve_outcome: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        self.registry = registry
        self.config = config if config is not None else ServeConfig()
        #: Called with each validated ``outcome`` payload — typically
        #: :meth:`repro.loop.ExperienceStore.record_served`.  ``None``
        #: makes the op a validated no-op acknowledgement.
        self.on_serve_outcome = on_serve_outcome
        self._draining = threading.Event()
        # Force the initial artifact load *now* so a bad policy directory
        # fails at startup, not on the first request.
        handle = self.registry.current
        self.obs_dim = handle.artifact.obs_dim
        self.act_dim = handle.artifact.act_dim
        self.engine = BatchedInferenceEngine(
            self._infer,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            max_queue=self.config.max_queue,
            default_deadline_ms=self.config.deadline_ms,
        )
        self._tcp = _TcpServer((self.config.host, self.config.port), self)
        self._serve_thread: Optional[threading.Thread] = None

    # -- policy forward (engine worker thread) -------------------------------
    def _infer(self, states: np.ndarray) -> Tuple[np.ndarray, str]:
        handle = self.registry.current
        return handle.artifact.act_batch(states), handle.version

    # -- lifecycle -----------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves ephemeral port 0."""
        return self._tcp.server_address[:2]

    def start(self) -> Tuple[str, int]:
        """Serve connections on a background thread; returns the address."""
        if self._serve_thread is not None:
            raise RuntimeError("server already started")
        self._serve_thread = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-tcp",
            daemon=True,
        )
        self._serve_thread.start()
        return self.address

    def run_until(self, stop: Callable[[], bool], poll_s: float = 0.1) -> None:
        """Serve until ``stop()`` goes true, then drain and shut down.

        ``stop`` is any zero-argument predicate — a
        :class:`~repro.resilience.drain.GracefulDrain` instance works
        as-is, giving the service SIGTERM-through-drain semantics.
        """
        if self._serve_thread is None:
            self.start()
        assert self._serve_thread is not None
        while not stop():
            self._serve_thread.join(poll_s)
            if not self._serve_thread.is_alive():
                break
        self.shutdown()

    def shutdown(self) -> None:
        """Graceful stop: refuse new work, drain in-flight, close sockets."""
        if self._draining.is_set():
            return
        self._draining.set()
        tel = get_telemetry()
        if tel.enabled:
            tel.on_drain(component="serve", queued=self.engine.queue_depth())
        # Drain the engine first so every accepted request is answered
        # before its connection thread loses the socket.
        self.engine.close(drain=True, timeout=self.config.drain_grace_s)
        self._tcp.shutdown()
        self._tcp.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(2.0)

    def __enter__(self) -> "AllocationServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    # -- request dispatch ----------------------------------------------------
    def handle_line(self, line: bytes) -> Dict[str, Any]:
        """One request line -> one response dict (handler threads)."""
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            return error_response("unknown", "bad_request", str(exc))
        op = request["op"]
        request_id = request.get("id")
        if op == "allocate":
            return self._handle_allocate(request, request_id)
        if op == "outcome":
            return self._handle_outcome(request, request_id)
        if op == "health":
            return self._handle_health(request_id)
        if op == "stats":
            return self._handle_stats(request_id)
        return self._handle_reload(request_id)

    def _handle_allocate(self, request: Dict[str, Any],
                         request_id: Optional[Any]) -> Dict[str, Any]:
        if self._draining.is_set():
            return error_response(
                "allocate", "draining", "server is draining", request_id
            )
        state = request.get("state")
        if not isinstance(state, (list, tuple)):
            return error_response(
                "allocate", "bad_request",
                "allocate needs a 'state' array", request_id,
            )
        arr = np.asarray(state, dtype=np.float64).ravel()
        if arr.size != self.obs_dim or not np.all(np.isfinite(arr)):
            return error_response(
                "allocate", "bad_request",
                f"state must be {self.obs_dim} finite floats, got "
                f"{arr.size}", request_id,
            )
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is not None and (
            not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0
        ):
            return error_response(
                "allocate", "bad_request",
                "deadline_ms must be a positive number", request_id,
            )
        try:
            ticket = self.engine.submit(arr, deadline_ms=deadline_ms)
            frequencies, version = ticket.result()
        except EngineOverloadedError as exc:
            return error_response("allocate", "overloaded", str(exc), request_id)
        except DeadlineExceededError as exc:
            return error_response(
                "allocate", "deadline_exceeded", str(exc), request_id
            )
        except EngineClosedError as exc:
            return error_response("allocate", "draining", str(exc), request_id)
        except Exception as exc:  # noqa: BLE001 - surface engine faults as responses
            return error_response("allocate", "internal", str(exc), request_id)
        return ok_response(
            "allocate", request_id,
            frequencies=[float(f) for f in frequencies],
            policy_version=version,
        )

    def _handle_outcome(self, request: Dict[str, Any],
                        request_id: Optional[Any]) -> Dict[str, Any]:
        if self._draining.is_set():
            return error_response(
                "outcome", "draining", "server is draining", request_id
            )
        state = request.get("state")
        frequencies = request.get("frequencies")
        reward = request.get("reward")
        if not isinstance(state, (list, tuple)):
            return error_response(
                "outcome", "bad_request",
                "outcome needs a 'state' array", request_id,
            )
        if not isinstance(frequencies, (list, tuple)):
            return error_response(
                "outcome", "bad_request",
                "outcome needs a 'frequencies' array", request_id,
            )
        if not isinstance(reward, (int, float)) or not np.isfinite(reward):
            return error_response(
                "outcome", "bad_request",
                "outcome needs a finite 'reward' number", request_id,
            )
        state_arr = np.asarray(state, dtype=np.float64).ravel()
        freq_arr = np.asarray(frequencies, dtype=np.float64).ravel()
        if state_arr.size != self.obs_dim or not np.all(np.isfinite(state_arr)):
            return error_response(
                "outcome", "bad_request",
                f"state must be {self.obs_dim} finite floats, got "
                f"{state_arr.size}", request_id,
            )
        if freq_arr.size != self.act_dim or not np.all(np.isfinite(freq_arr)):
            return error_response(
                "outcome", "bad_request",
                f"frequencies must be {self.act_dim} finite floats, got "
                f"{freq_arr.size}", request_id,
            )
        recorded = False
        if self.on_serve_outcome is not None:
            payload: Dict[str, Any] = {
                "state": state_arr,
                "frequencies": freq_arr,
                "reward": float(reward),
                "policy_version": str(
                    request.get("policy_version") or self.registry.version()
                ),
            }
            for key in ("cost", "clock"):
                value = request.get(key)
                if value is not None:
                    if not isinstance(value, (int, float)) or not np.isfinite(
                        value
                    ):
                        return error_response(
                            "outcome", "bad_request",
                            f"{key} must be a finite number", request_id,
                        )
                    payload[key] = float(value)
            try:
                self.on_serve_outcome(payload)
            except Exception as exc:  # noqa: BLE001 - sink faults become responses
                return error_response("outcome", "internal", str(exc), request_id)
            recorded = True
        return ok_response("outcome", request_id, recorded=recorded)

    def _handle_health(self, request_id: Optional[Any]) -> Dict[str, Any]:
        return ok_response(
            "health", request_id,
            status="draining" if self._draining.is_set() else "serving",
            protocol=PROTOCOL_VERSION,
            policy_version=self.registry.version(),
            obs_dim=self.obs_dim,
            act_dim=self.act_dim,
        )

    def _handle_stats(self, request_id: Optional[Any]) -> Dict[str, Any]:
        return ok_response(
            "stats", request_id,
            queue_depth=self.engine.queue_depth(),
            metrics=self.engine.metrics.snapshot(),
        )

    def _handle_reload(self, request_id: Optional[Any]) -> Dict[str, Any]:
        try:
            handle = self.registry.reload()
        except (CheckpointCorruptError, FileNotFoundError) as exc:
            return error_response(
                "reload", "reload_failed",
                f"{exc} (still serving {self.registry.version()})",
                request_id,
            )
        return ok_response("reload", request_id, policy_version=handle.version)
