"""Frozen, forward-only policy artifacts for online serving.

Training checkpoints carry everything Algorithm 1 needs to *continue*
(critic, optimizer moments, reward scaler, RNG streams); serving needs
none of it.  :func:`export_policy` distills a trained
:class:`~repro.rl.agent.PPOAgent` checkpoint into a **policy artifact**:
the actor weights, the frozen observation-normalization moments, the
:class:`~repro.env.wrappers.ActionMapper` bounds and a schema version —
written through the durable :func:`~repro.utils.serialization.save_npz_state`
path, so every artifact is fsync-published with a sha256 sidecar.

:class:`PolicyArtifact` loads one back and exposes the whole
state -> frequencies map as a single vectorized call.  Every forward
runs the batch-stable inference kernel (``mean_infer``), so a response
is bit-identical whether the state was served alone, inside any
micro-batch, or through an in-process
:class:`~repro.core.drl_allocator.DRLAllocator` — batching is purely a
throughput decision, never a numerics one.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.env.wrappers import ActionMapper
from repro.rl.normalization import ObservationNormalizer, PerDeviceNormalizer
from repro.rl.policy import GaussianActor
from repro.rl.shared_policy import N_CONTEXT_STATS, SharedGaussianActor
from repro.utils.serialization import (
    CheckpointCorruptError,
    checksum_path,
    load_npz_state,
    read_checksum_sidecar,
    save_npz_state,
)

#: Artifact layout version; bump on breaking key/semantic changes.
ARTIFACT_SCHEMA_VERSION = 1

#: Keys every artifact must carry (weights/normalizer keys vary by arch).
_REQUIRED_KEYS = (
    "meta/schema",
    "meta/obs_dim",
    "meta/act_dim",
    "meta/activation",
    "meta/policy",
    "meta/floor_frac",
    "mapper/max_frequencies",
)

_Normalizer = Union[ObservationNormalizer, PerDeviceNormalizer]
_Actor = Union[GaussianActor, SharedGaussianActor]


def _scalar_str(value: np.ndarray) -> str:
    return str(np.asarray(value).item())


def _actor_weight_shapes(
    state: Dict[str, np.ndarray], prefix: str = "actor/mean/"
) -> List[Tuple[int, ...]]:
    """Shapes of the actor MLP's weight matrices, in layer order."""
    shapes: List[Tuple[int, ...]] = []
    for i in range(0, 2 * len(state), 2):  # p0, p2, p4, ... are W matrices
        key = f"{prefix}p{i}"
        if key not in state:
            break
        shapes.append(np.asarray(state[key]).shape)
    if not shapes or any(len(s) != 2 for s in shapes):
        raise CheckpointCorruptError(
            "checkpoint has no recognizable actor MLP weights under "
            f"{prefix}p0, p2, ..."
        )
    return shapes


def infer_hidden(state: Dict[str, np.ndarray]) -> Tuple[int, ...]:
    """Recover the actor's hidden widths from its weight shapes.

    The checkpoint format stores no architecture metadata; the chain of
    ``(in, h1), (h1, h2), ..., (h_last, out)`` weight shapes determines
    it completely, so export never needs a ``--hidden`` flag.
    """
    shapes = _actor_weight_shapes(state)
    return tuple(int(s[1]) for s in shapes[:-1])


def detect_policy_kind(state: Dict[str, np.ndarray]) -> str:
    """``"dense"`` or ``"shared"`` from checkpoint shapes alone.

    A shared (permutation-equivariant) actor consumes per-device blocks
    of ``h * (1 + context_stats)`` features and its normalizer carries a
    ``block_dim``; the dense actor consumes the flat ``obs_dim`` state.
    """
    if "obs_norm/block_dim" in state:
        return "shared"
    obs_dim = int(np.asarray(state["meta/obs_dim"]))
    in_dim = _actor_weight_shapes(state)[0][0]
    return "dense" if in_dim == obs_dim else "shared"


class PolicyArtifact:
    """A loaded forward-only policy: state batch -> frequency batch.

    Construction always ends with a probe forward on a zero state, so a
    corrupt or non-finite artifact fails at *load* time (where the
    registry can fall back) rather than on the first live request.
    """

    def __init__(
        self,
        actor: _Actor,
        normalizer: _Normalizer,
        mapper: ActionMapper,
        obs_dim: int,
        act_dim: int,
        policy: str,
        source: str = "",
        digest: str = "",
    ) -> None:
        self.actor = actor
        self.normalizer = normalizer
        self.mapper = mapper
        self.obs_dim = int(obs_dim)
        self.act_dim = int(act_dim)
        self.policy = str(policy)
        #: Path the artifact was loaded from ("" for in-memory builds).
        self.source = str(source)
        #: sha256 content digest from the sidecar ("" when absent).
        self.digest = str(digest)
        probe = self.act_batch(np.zeros((1, self.obs_dim)))
        if probe.shape != (1, self.act_dim) or not np.all(np.isfinite(probe)):
            raise CheckpointCorruptError(
                f"policy artifact {source or '<memory>'} fails its probe "
                f"forward (shape {probe.shape}, finite="
                f"{bool(np.all(np.isfinite(probe)))})"
            )

    @property
    def version(self) -> str:
        """Human-readable identity: basename plus digest prefix."""
        name = os.path.basename(self.source) if self.source else "<memory>"
        return f"{name}@{self.digest[:12]}" if self.digest else name

    # -- inference ----------------------------------------------------------
    def raw_batch(self, states: np.ndarray) -> np.ndarray:
        """Normalized stable forward: ``(B, obs_dim)`` -> raw actions."""
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        if states.shape[1] != self.obs_dim:
            raise ValueError(
                f"expected states of shape (B, {self.obs_dim}), got {states.shape}"
            )
        norm = self.normalizer.normalize_frozen(states)
        return self.actor.mean_infer(norm)

    def raw_action(self, obs: np.ndarray) -> np.ndarray:
        """Single flat state -> raw (pre-mapper) action."""
        return self.raw_batch(np.asarray(obs, dtype=np.float64).ravel())[0]

    def act_batch(self, states: np.ndarray) -> np.ndarray:
        """``(B, obs_dim)`` states -> ``(B, act_dim)`` frequencies (GHz)."""
        return self.mapper.to_frequencies_batch(self.raw_batch(states))

    def act(self, obs: np.ndarray) -> np.ndarray:
        """Single flat state -> per-device frequencies delta (GHz)."""
        return self.act_batch(np.asarray(obs, dtype=np.float64).ravel())[0]

    # -- loading ------------------------------------------------------------
    @classmethod
    def from_state(cls, state: Dict[str, np.ndarray], source: str = "",
                   digest: str = "") -> "PolicyArtifact":
        """Rebuild the serving stack from a flat artifact state dict."""
        for key in _REQUIRED_KEYS:
            if key not in state:
                raise CheckpointCorruptError(
                    f"policy artifact {source or '<memory>'} is missing "
                    f"required key {key!r}"
                )
        schema = int(np.asarray(state["meta/schema"]))
        if schema != ARTIFACT_SCHEMA_VERSION:
            raise CheckpointCorruptError(
                f"policy artifact {source or '<memory>'} has schema "
                f"{schema}; this build reads schema {ARTIFACT_SCHEMA_VERSION}"
            )
        obs_dim = int(np.asarray(state["meta/obs_dim"]))
        act_dim = int(np.asarray(state["meta/act_dim"]))
        activation = _scalar_str(state["meta/activation"])
        policy = _scalar_str(state["meta/policy"])
        floor_frac = float(np.asarray(state["meta/floor_frac"]))
        hidden = infer_hidden(state)
        try:
            actor: _Actor
            if policy == "shared":
                if obs_dim % act_dim != 0:
                    raise ValueError("shared policy needs obs_dim % act_dim == 0")
                actor = SharedGaussianActor(
                    act_dim, obs_dim // act_dim, hidden=hidden,
                    activation=activation, rng=0,
                )
            else:
                actor = GaussianActor(
                    obs_dim, act_dim, hidden=hidden, activation=activation, rng=0
                )
            actor.load_state_dict(state, prefix="actor/")
            norm_state = {
                k.split("/", 1)[1]: v
                for k, v in state.items()
                if k.startswith("obs_norm/")
            }
            normalizer: _Normalizer
            if "block_dim" in norm_state:
                normalizer = PerDeviceNormalizer(
                    int(np.asarray(norm_state["block_dim"]))
                )
            else:
                normalizer = ObservationNormalizer(obs_dim)
            normalizer.load_state_dict(norm_state)
            normalizer.freeze()
            mapper = ActionMapper(
                np.asarray(state["mapper/max_frequencies"], dtype=np.float64),
                floor_frac,
            )
        except (KeyError, ValueError) as exc:
            raise CheckpointCorruptError(
                f"policy artifact {source or '<memory>'} cannot be "
                f"rebuilt: {exc}"
            ) from exc
        if mapper.n != act_dim:
            raise CheckpointCorruptError(
                f"policy artifact {source or '<memory>'} mapper bounds size "
                f"{mapper.n} does not match act_dim {act_dim}"
            )
        return cls(
            actor, normalizer, mapper, obs_dim, act_dim, policy,
            source=source, digest=digest,
        )

    @classmethod
    def load(cls, path: str) -> "PolicyArtifact":
        """Load and fully validate an artifact (checksum, schema, probe).

        Raises :class:`CheckpointCorruptError` for any failure mode, so
        callers (the registry's load-validate-swap) need one except.
        """
        state = load_npz_state(path)
        digest = ""
        if os.path.exists(checksum_path(path)):
            digest = read_checksum_sidecar(path)
        return cls.from_state(state, source=path, digest=digest)


def export_policy(
    checkpoint_path: str,
    out_path: str,
    max_frequencies: np.ndarray,
    floor_frac: float = 0.1,
    activation: str = "tanh",
    keep: int = 1,
    durable: bool = True,
) -> PolicyArtifact:
    """Distill an agent checkpoint into a durable serving artifact.

    ``max_frequencies`` are the fleet's per-device DVFS ceilings — the
    deployment-time half of the action map that training checkpoints
    never stored.  Returns the loaded (validated) artifact.
    """
    state = load_npz_state(checkpoint_path)
    for key in ("meta/obs_dim", "meta/act_dim"):
        if key not in state:
            raise CheckpointCorruptError(
                f"{checkpoint_path} is not an agent checkpoint (missing {key})"
            )
    act_dim = int(np.asarray(state["meta/act_dim"]))
    bounds = np.asarray(max_frequencies, dtype=np.float64).ravel()
    if bounds.size != act_dim:
        raise ValueError(
            f"max_frequencies has {bounds.size} devices; the checkpoint "
            f"was trained for act_dim {act_dim}"
        )
    artifact_state: Dict[str, np.ndarray] = {
        k: v
        for k, v in state.items()
        if k.startswith("actor/") or k.startswith("obs_norm/")
    }
    artifact_state["meta/schema"] = np.asarray(ARTIFACT_SCHEMA_VERSION)
    artifact_state["meta/obs_dim"] = np.asarray(state["meta/obs_dim"])
    artifact_state["meta/act_dim"] = np.asarray(state["meta/act_dim"])
    artifact_state["meta/activation"] = np.asarray(activation)
    artifact_state["meta/policy"] = np.asarray(detect_policy_kind(state))
    artifact_state["meta/floor_frac"] = np.asarray(float(floor_frac))
    artifact_state["mapper/max_frequencies"] = bounds
    save_npz_state(out_path, artifact_state, keep=keep, durable=durable)
    return PolicyArtifact.load(out_path)
