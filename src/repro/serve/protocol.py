"""JSON-lines wire protocol for the allocation service.

One request per line, one response per line, UTF-8 JSON objects.  A
client may pipeline any number of requests over one connection; the
server answers them in order.  The protocol is deliberately stdlib-flat
(no framing beyond ``\\n``) so a shell one-liner, the bundled load
generator and a CI smoke script all speak it with nothing but sockets
and :mod:`json`.

Requests::

    {"op": "allocate", "state": [..obs_dim floats..], "deadline_ms": 50}
    {"op": "outcome", "state": [...], "frequencies": [...], "reward": -3.2}
    {"op": "health"}
    {"op": "stats"}
    {"op": "reload"}

``outcome`` reports the realized reward (optionally ``cost``, ``clock``
and ``policy_version``) of a previously served allocation back to the
server, which forwards it to the experience store feeding the closed
policy-improvement loop (:mod:`repro.loop`).

Responses always carry ``ok`` and echo ``id`` when the request had one::

    {"ok": true,  "op": "allocate", "frequencies": [...], "policy_version": "..."}
    {"ok": false, "op": "allocate", "error": "overloaded", "message": "..."}

Error codes are a closed set (:data:`ERROR_CODES`) so clients can
switch on them: ``bad_request``, ``overloaded``, ``deadline_exceeded``,
``draining``, ``reload_failed``, ``internal``.
"""

from __future__ import annotations

import json
from typing import Any, BinaryIO, Dict, Optional

#: Wire protocol version, reported by ``health``.
PROTOCOL_VERSION = 1

#: Upper bound on one request line; longer lines are a protocol error.
MAX_LINE_BYTES = 1 << 20

#: Operations the server accepts.
OPS = ("allocate", "outcome", "health", "stats", "reload")

#: Closed set of machine-readable error codes.
ERROR_CODES = (
    "bad_request",
    "overloaded",
    "deadline_exceeded",
    "draining",
    "reload_failed",
    "internal",
)


class ProtocolError(ValueError):
    """A malformed request line (bad JSON, bad shape, oversized)."""


def decode_request(line: bytes) -> Dict[str, Any]:
    """Parse one request line into a dict with a validated ``op``."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    try:
        request = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError("request must be a JSON object")
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {list(OPS)}")
    return request


def encode_response(response: Dict[str, Any]) -> bytes:
    """Serialize one response dict to a newline-terminated JSON line."""
    return json.dumps(response, separators=(",", ":")).encode("utf-8") + b"\n"


def ok_response(op: str, request_id: Optional[Any] = None,
                **fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True, "op": op}
    if request_id is not None:
        response["id"] = request_id
    response.update(fields)
    return response


def error_response(op: str, code: str, message: str,
                   request_id: Optional[Any] = None) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    response: Dict[str, Any] = {
        "ok": False, "op": op, "error": code, "message": message,
    }
    if request_id is not None:
        response["id"] = request_id
    return response


def read_line(stream: BinaryIO) -> bytes:
    """Read one protocol line (without the newline); b"" on EOF.

    Raises :class:`ProtocolError` when the peer sends more than
    :data:`MAX_LINE_BYTES` without a newline, instead of buffering
    without bound.
    """
    line = stream.readline(MAX_LINE_BYTES + 1)
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request line exceeds {MAX_LINE_BYTES} bytes")
    return line.rstrip(b"\n")
