"""Seeded load generator for the allocation service.

``repro serve-bench`` drives a running :class:`AllocationServer` with
reproducible traffic: every worker draws its bandwidth-history states
from its own seeded :class:`numpy.random.Generator` (spawned from one
root seed), so two benchmark runs against the same policy issue the
*identical* request sequence — latency differences are the server's,
never the workload's.

Two arrival models:

* **closed** loop — each worker sends, waits for the response, sends
  again; concurrency bounds the in-flight requests and the measured
  latency is pure service latency.
* **open** loop — each worker *paces* sends at ``rate / concurrency``
  requests per second regardless of responses (pipelining on its
  connection, a reader thread matching responses by id), which is what
  exposes queueing collapse and load shedding under overload.

Results aggregate into a :class:`LoadReport` (p50/p95/p99, throughput,
errors by protocol code) built on the same
:class:`~repro.obs.metrics.StreamingHistogram` the rest of the repo
reports with, and are mirrored to telemetry as one ``serve_bench``
event when a sink is installed.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import MetricsRegistry, get_telemetry
from repro.serve.protocol import MAX_LINE_BYTES, ProtocolError, encode_response
from repro.utils.rng import SeedLike, spawn_generators

#: Bandwidth states are drawn uniformly from this range (Mbit/s-like).
STATE_LOW = 0.1
STATE_HIGH = 80.0


def _send_line(sock: socket.socket, payload: Dict[str, Any]) -> None:
    sock.sendall(encode_response(payload))  # same JSON-line framing


def _parse_response(line: bytes) -> Dict[str, Any]:
    try:
        response = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"unparseable response line: {exc}") from exc
    if not isinstance(response, dict):
        raise ProtocolError("response must be a JSON object")
    return response


def request_once(
    host: str,
    port: int,
    op: str,
    timeout: float = 10.0,
    **fields: Any,
) -> Dict[str, Any]:
    """One connection, one request, one response — CI scripting helper."""
    payload: Dict[str, Any] = {"op": op}
    payload.update(fields)
    with socket.create_connection((host, port), timeout=timeout) as sock:
        _send_line(sock, payload)
        with sock.makefile("rb") as fh:
            line = fh.readline(MAX_LINE_BYTES + 1)
    if not line:
        raise ConnectionError("server closed the connection")
    return _parse_response(line)


@dataclass
class LoadConfig:
    """One benchmark run's shape."""

    host: str = "127.0.0.1"
    port: int = 0
    requests: int = 500
    concurrency: int = 4
    seed: int = 0
    #: "closed" (wait-then-send) or "open" (paced sends).
    mode: str = "closed"
    #: Open-loop aggregate arrival rate, requests/second.
    rate: float = 200.0
    deadline_ms: Optional[float] = None
    timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError("mode must be 'closed' or 'open'")
        if self.requests < 1 or self.concurrency < 1:
            raise ValueError("requests and concurrency must be >= 1")
        if self.mode == "open" and self.rate <= 0:
            raise ValueError("open-loop mode needs a positive rate")


@dataclass
class LoadReport:
    """Aggregated outcome of one benchmark run."""

    n_requests: int = 0
    n_ok: int = 0
    errors_by_code: Dict[str, int] = field(default_factory=dict)
    latencies_ms: List[float] = field(default_factory=list)
    duration_s: float = 0.0
    policy_versions: List[str] = field(default_factory=list)

    @property
    def n_errors(self) -> int:
        return sum(self.errors_by_code.values())

    @property
    def throughput_rps(self) -> float:
        return self.n_ok / self.duration_s if self.duration_s > 0 else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies_ms), q))

    def summary(self) -> str:
        lines = [
            f"requests      {self.n_requests}",
            f"ok            {self.n_ok}",
            f"errors        {self.n_errors}"
            + (f"  {self.errors_by_code}" if self.errors_by_code else ""),
            f"duration      {self.duration_s:.3f} s",
            f"throughput    {self.throughput_rps:.1f} req/s",
            f"latency p50   {self.percentile(50):.3f} ms",
            f"latency p95   {self.percentile(95):.3f} ms",
            f"latency p99   {self.percentile(99):.3f} ms",
        ]
        if self.policy_versions:
            lines.append(f"policy        {sorted(set(self.policy_versions))}")
        return "\n".join(lines)


class _WorkerResult:
    __slots__ = ("latencies", "ok", "errors", "versions", "failure")

    def __init__(self) -> None:
        self.latencies: List[float] = []
        self.ok = 0
        self.errors: Dict[str, int] = {}
        self.versions: List[str] = []
        self.failure: Optional[BaseException] = None

    def record(self, response: Dict[str, Any], latency_ms: float) -> None:
        self.latencies.append(latency_ms)
        if response.get("ok"):
            self.ok += 1
            version = str(response.get("policy_version", ""))
            if version and (not self.versions or self.versions[-1] != version):
                self.versions.append(version)
        else:
            code = str(response.get("error", "internal"))
            self.errors[code] = self.errors.get(code, 0) + 1


def _states_for(rng: np.random.Generator, n: int, obs_dim: int) -> np.ndarray:
    return rng.uniform(STATE_LOW, STATE_HIGH, size=(n, obs_dim))


def _run_closed(cfg: LoadConfig, states: np.ndarray,
                result: _WorkerResult) -> None:
    with socket.create_connection(
        (cfg.host, cfg.port), timeout=cfg.timeout_s
    ) as sock, sock.makefile("rb") as fh:
        for i in range(states.shape[0]):
            payload: Dict[str, Any] = {
                "op": "allocate", "id": i, "state": states[i].tolist(),
            }
            if cfg.deadline_ms is not None:
                payload["deadline_ms"] = cfg.deadline_ms
            t0 = time.monotonic()
            _send_line(sock, payload)
            line = fh.readline(MAX_LINE_BYTES + 1)
            latency_ms = (time.monotonic() - t0) * 1000.0
            if not line:
                raise ConnectionError("server closed the connection")
            result.record(_parse_response(line), latency_ms)


def _run_open(cfg: LoadConfig, states: np.ndarray,
              result: _WorkerResult) -> None:
    n = states.shape[0]
    interval = cfg.concurrency / cfg.rate  # per-worker send spacing
    send_times: Dict[int, float] = {}
    lock = threading.Lock()
    with socket.create_connection(
        (cfg.host, cfg.port), timeout=cfg.timeout_s
    ) as sock, sock.makefile("rb") as fh:

        def _read_all() -> None:
            for _ in range(n):
                line = fh.readline(MAX_LINE_BYTES + 1)
                now = time.monotonic()
                if not line:
                    raise ConnectionError("server closed the connection")
                response = _parse_response(line)
                with lock:
                    t0 = send_times.pop(int(response.get("id", -1)), now)
                result.record(response, (now - t0) * 1000.0)

        reader = threading.Thread(target=_read_all, daemon=True)
        reader.start()
        start = time.monotonic()
        for i in range(n):
            target = start + i * interval
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            payload: Dict[str, Any] = {
                "op": "allocate", "id": i, "state": states[i].tolist(),
            }
            if cfg.deadline_ms is not None:
                payload["deadline_ms"] = cfg.deadline_ms
            with lock:
                send_times[i] = time.monotonic()
            _send_line(sock, payload)
        reader.join(cfg.timeout_s)
        if reader.is_alive():
            raise TimeoutError("open-loop reader did not drain responses")


def run_load(config: LoadConfig, obs_dim: Optional[int] = None,
             rng: SeedLike = None) -> LoadReport:
    """Run one benchmark against a live server; returns the report.

    ``obs_dim`` defaults to whatever the server's ``health`` endpoint
    reports, so the generator always sends well-shaped states.
    """
    if obs_dim is None:
        health = request_once(config.host, config.port, "health",
                              timeout=config.timeout_s)
        if not health.get("ok"):
            raise ConnectionError(f"health check failed: {health}")
        obs_dim = int(health["obs_dim"])
    seeds = spawn_generators(
        rng if rng is not None else config.seed, config.concurrency
    )
    counts = [config.requests // config.concurrency] * config.concurrency
    for i in range(config.requests % config.concurrency):
        counts[i] += 1
    workers: List[Tuple[threading.Thread, _WorkerResult]] = []
    runner = _run_closed if config.mode == "closed" else _run_open
    t_start = time.monotonic()
    for i in range(config.concurrency):
        if counts[i] == 0:
            continue
        states = _states_for(seeds[i], counts[i], obs_dim)
        result = _WorkerResult()

        def _work(states: np.ndarray = states,
                  result: _WorkerResult = result) -> None:
            try:
                runner(config, states, result)
            except BaseException as exc:  # noqa: BLE001 - report, don't hang the bench
                result.failure = exc

        thread = threading.Thread(target=_work, daemon=True)
        thread.start()
        workers.append((thread, result))
    report = LoadReport(n_requests=config.requests)
    for thread, result in workers:
        thread.join(config.timeout_s + 30.0)
        if thread.is_alive():
            result.failure = TimeoutError("worker did not finish")
    report.duration_s = time.monotonic() - t_start
    failures = [r.failure for _, r in workers if r.failure is not None]
    if failures:
        raise RuntimeError(
            f"{len(failures)} load worker(s) failed; first: {failures[0]!r}"
        ) from failures[0]
    for _, result in workers:
        report.n_ok += result.ok
        report.latencies_ms.extend(result.latencies)
        report.policy_versions.extend(result.versions)
        for code, count in result.errors.items():
            report.errors_by_code[code] = (
                report.errors_by_code.get(code, 0) + count
            )
    metrics = MetricsRegistry()
    hist = metrics.histogram("bench.latency_ms")
    for latency in report.latencies_ms:
        hist.observe(latency)
    tel = get_telemetry()
    if tel.enabled:
        tel.event(
            "serve_bench",
            mode=config.mode,
            requests=report.n_requests,
            ok=report.n_ok,
            errors=report.errors_by_code,
            duration_s=report.duration_s,
            throughput_rps=report.throughput_rps,
            p50_ms=report.percentile(50),
            p95_ms=report.percentile(95),
            p99_ms=report.percentile(99),
        )
    return report
