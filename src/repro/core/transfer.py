"""Cross-fleet-size deployment of a permutation-shared policy.

A :class:`repro.rl.shared_policy.SharedGaussianActor` has parameters
independent of the fleet size; with the matching per-device observation
normalizer (:class:`repro.rl.normalization.PerDeviceNormalizer`) the
whole policy transfers: train on a 3-device testbed, deploy on a
500-device fleet.  :func:`transfer_allocator` performs the rebinding.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Allocator
from repro.env.wrappers import ActionMapper
from repro.rl.agent import PPOAgent
from repro.rl.normalization import PerDeviceNormalizer
from repro.rl.shared_policy import SharedGaussianActor


class TransferredAllocator(Allocator):
    """A shared policy rebound to a (possibly different-size) fleet."""

    name = "drl-transfer"

    def __init__(
        self,
        actor: SharedGaussianActor,
        normalizer: PerDeviceNormalizer,
        action_floor_frac: float = 0.1,
    ):
        self.actor = actor
        self.normalizer = normalizer
        self.action_floor_frac = float(action_floor_frac)
        self._mapper = None

    def reset(self, system) -> None:
        if system.n_devices != self.actor.n_devices:
            raise ValueError(
                f"actor bound to {self.actor.n_devices} devices but system "
                f"has {system.n_devices}; use transfer_allocator(agent, n)"
            )
        self._mapper = ActionMapper(
            system.fleet.max_frequencies, self.action_floor_frac
        )

    def allocate(self, system) -> np.ndarray:
        if self._mapper is None:
            self.reset(system)
        obs = system.bandwidth_state().ravel()
        norm = self.normalizer.normalize_frozen(obs)
        action, _ = self.actor.act(norm, deterministic=True)
        return self._mapper.to_frequencies(action)


def transfer_allocator(
    agent: PPOAgent, n_devices: int, action_floor_frac: float = 0.1
) -> TransferredAllocator:
    """Rebind a trained shared-policy agent to a new fleet size.

    Raises ``TypeError`` when the agent was trained with the dense
    (fleet-size-locked) architecture.
    """
    if not isinstance(agent.actor, SharedGaussianActor):
        raise TypeError(
            "transfer requires an agent trained with policy='shared' "
            f"(got actor type {type(agent.actor).__name__})"
        )
    if not isinstance(agent.obs_norm, PerDeviceNormalizer):
        raise TypeError("transfer requires the per-device observation normalizer")
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    rebound = agent.actor.with_fleet_size(n_devices)
    return TransferredAllocator(
        rebound, agent.obs_norm, action_floor_frac=action_floor_frac
    )
