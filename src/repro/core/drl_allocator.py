"""Online reasoning: the trained actor drives a live system.

Section V.B.2: "During reasoning, we only use the trained actor network
to generate its action a_k, given its own state s_k."  The allocator is
deterministic (policy mean) and needs no critic, reward or buffer.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Allocator
from repro.env.wrappers import ActionMapper
from repro.rl.agent import AgentConfig, PPOAgent
from repro.utils.serialization import load_npz_state


class DRLAllocator(Allocator):
    """Adapter exposing a trained :class:`PPOAgent` as an Allocator."""

    name = "drl"

    def __init__(self, agent: PPOAgent, action_floor_frac: float = 0.1):
        self.agent = agent
        self.action_floor_frac = float(action_floor_frac)
        self._mapper = None

    def reset(self, system) -> None:
        self._mapper = ActionMapper(
            system.fleet.max_frequencies, self.action_floor_frac
        )

    def allocate(self, system) -> np.ndarray:
        if self._mapper is None:
            self.reset(system)
        obs = system.bandwidth_state().ravel()
        if obs.size != self.agent.config.obs_dim:
            raise ValueError(
                f"system state dim {obs.size} does not match the agent's "
                f"trained obs dim {self.agent.config.obs_dim}"
            )
        raw_action = self.agent.policy_action(obs)
        return self._mapper.to_frequencies(raw_action)

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        hidden=(64, 64),
        action_floor_frac: float = 0.1,
    ) -> "DRLAllocator":
        """Rehydrate an allocator from a saved agent checkpoint."""
        state = load_npz_state(path)
        obs_dim = int(np.asarray(state["meta/obs_dim"]))
        act_dim = int(np.asarray(state["meta/act_dim"]))
        agent = PPOAgent(
            AgentConfig(obs_dim=obs_dim, act_dim=act_dim, hidden=tuple(hidden)),
            rng=0,
        )
        agent.load_state_dict(state)
        agent.freeze()
        return cls(agent, action_floor_frac=action_floor_frac)
