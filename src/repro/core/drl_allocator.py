"""Online reasoning: the trained actor drives a live system.

Section V.B.2: "During reasoning, we only use the trained actor network
to generate its action a_k, given its own state s_k."  The allocator is
deterministic (policy mean) and needs no critic, reward or buffer.

Two rehydration paths produce bit-identical allocations:

* :meth:`DRLAllocator.from_checkpoint` — a full training checkpoint
  (loaded through the corruption-fallback rotation walk);
* :meth:`DRLAllocator.from_artifact` — a frozen serving artifact
  exported by ``repro export-policy`` (:mod:`repro.serve.artifact`).

Both run the batch-stable inference kernel, which is also what the
allocation server runs — so "evaluate in process" and "ask the service"
are interchangeable down to the last bit.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.baselines.base import Allocator
from repro.env.wrappers import ActionMapper
from repro.rl.agent import AgentConfig, PPOAgent


class DRLAllocator(Allocator):
    """Adapter exposing a trained :class:`PPOAgent` as an Allocator."""

    name = "drl"

    def __init__(self, agent: Optional[PPOAgent], action_floor_frac: float = 0.1):
        self.agent = agent
        self.action_floor_frac = float(action_floor_frac)
        self._mapper: Optional[ActionMapper] = None
        self._artifact = None

    def reset(self, system) -> None:
        if self._artifact is not None:
            return  # the artifact carries its own (exported) action map
        self._mapper = ActionMapper(
            system.fleet.max_frequencies, self.action_floor_frac
        )

    def allocate(self, system) -> np.ndarray:
        obs = system.bandwidth_state().ravel()
        if self._artifact is not None:
            if obs.size != self._artifact.obs_dim:
                raise ValueError(
                    f"system state dim {obs.size} does not match the "
                    f"artifact's obs dim {self._artifact.obs_dim}"
                )
            return self._artifact.act(obs)
        if self._mapper is None:
            self.reset(system)
        assert self._mapper is not None and self.agent is not None
        if obs.size != self.agent.config.obs_dim:
            raise ValueError(
                f"system state dim {obs.size} does not match the agent's "
                f"trained obs dim {self.agent.config.obs_dim}"
            )
        raw_action = self.agent.policy_action(obs)
        return self._mapper.to_frequencies(raw_action)

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        hidden: Optional[Tuple[int, ...]] = None,
        action_floor_frac: float = 0.1,
        keep: int = 3,
    ) -> "DRLAllocator":
        """Rehydrate an allocator from a saved agent checkpoint.

        Loading walks the checkpoint's rotation chain
        (:func:`~repro.resilience.checkpoint.load_checkpoint_with_fallback`),
        so a corrupt newest generation falls back to an older good one
        instead of failing the evaluation.  ``hidden`` is inferred from
        the checkpoint's weight shapes when not given, and the policy
        architecture (dense vs shared) is detected the same way.
        """
        from repro.resilience.checkpoint import load_checkpoint_with_fallback
        from repro.serve.artifact import detect_policy_kind, infer_hidden

        state, _used = load_checkpoint_with_fallback(path, keep=keep)
        obs_dim = int(np.asarray(state["meta/obs_dim"]))
        act_dim = int(np.asarray(state["meta/act_dim"]))
        agent = PPOAgent(
            AgentConfig(
                obs_dim=obs_dim,
                act_dim=act_dim,
                hidden=infer_hidden(state) if hidden is None else tuple(hidden),
                policy=detect_policy_kind(state),
            ),
            rng=0,
        )
        agent.load_state_dict(state)
        agent.freeze()
        return cls(agent, action_floor_frac=action_floor_frac)

    @classmethod
    def from_artifact(cls, artifact: Union[str, "object"]) -> "DRLAllocator":
        """Rehydrate an allocator from a serving artifact (path or object).

        The returned allocator uses the artifact's own exported action
        bounds rather than the live system's, exactly as the allocation
        server does — its outputs are bit-identical to served responses.
        """
        from repro.serve.artifact import PolicyArtifact

        if isinstance(artifact, str):
            artifact = PolicyArtifact.load(artifact)
        if not isinstance(artifact, PolicyArtifact):
            raise TypeError(
                f"expected a PolicyArtifact or path, got {type(artifact)!r}"
            )
        allocator = cls(None, action_floor_frac=artifact.mapper.floor_frac)
        allocator._mapper = artifact.mapper
        allocator._artifact = artifact
        return allocator
