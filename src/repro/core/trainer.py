"""Algorithm 1: the offline DRL agent training procedure.

Mapping from the paper's pseudocode to this implementation:

* line 1  (init networks)            -> :class:`repro.rl.agent.PPOAgent`
* line 2  (load network dataset)     -> the env's trace-driven system
* line 3  (replay buffer D, device info) -> agent buffer / DeviceFleet
* line 4  (theta_a_old <- theta_a)   -> agent.actor_old sync
* line 6  (random start time t^1)    -> env.reset() with random_start
* lines 7-10 (initial state s_1)     -> FLSystem.bandwidth_state()
* line 12 (sample action from theta_a_old) -> agent.act()
* line 13 (devices train at delta)   -> env.step()
* line 14 (reward, Eq. 13)           -> IterationResult.reward
* lines 16-23 (buffer-full update: M PPO epochs, critic regression on
  r + gamma V(s'), re-sync theta_old, clear D) -> agent.observe()
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis import sanitizer as _sanitizer
from repro.core.callbacks import TrainingHistory
from repro.env.fl_env import FLSchedulingEnv
from repro.obs import get_telemetry
from repro.rl.agent import AgentConfig, PPOAgent
from repro.rl.ppo import PPOConfig
from repro.utils.rng import SeedLike, as_generator


def _default_ppo_config() -> PPOConfig:
    """PPO hyperparameters tuned for the FL scheduling environment.

    The task is near-contextual-bandit (actions couple to future states
    only through the wall clock), so a small discount and aggressive
    learning rates converge far faster than the generic PPO defaults.
    """
    return PPOConfig(
        actor_lr=1e-3,
        critic_lr=3e-3,
        gamma=0.9,
        gae_lambda=0.9,
        epochs=10,
        minibatch_size=128,
        entropy_coef=1e-3,
        target_kl=0.05,
    )


@dataclass
class TrainerConfig:
    """Offline-training hyperparameters (testbed-preset defaults)."""

    n_episodes: int = 800
    hidden: tuple = (64, 64)
    buffer_size: int = 512        # |D|
    ppo: PPOConfig = field(default_factory=_default_ppo_config)
    normalize_obs: bool = True
    scale_rewards: bool = True
    init_log_std: float = -1.0
    #: "ppo" (paper), "a2c" (repro.rl.a2c) or "ddpg" (repro.rl.ddpg).
    algorithm: str = "ppo"
    #: "dense" (paper's flat-state MLP) or "shared" (permutation-shared
    #: per-device actor — repro.rl.shared_policy; PPO/A2C only).
    policy: str = "dense"
    #: Stop early once the smoothed episode cost stabilizes (0 disables).
    early_stop_window: int = 0
    early_stop_rel_tol: float = 0.02
    #: Save a resumable checkpoint every this many episodes (0 disables).
    checkpoint_every: int = 0
    #: Destination .npz for periodic checkpoints (required when enabled).
    checkpoint_path: Optional[str] = None
    #: Checkpoint generations kept on disk (rotation ``path``, ``path.1``,
    #: ...); resume falls back through them when the newest is corrupt.
    checkpoint_keep: int = 1
    #: Parallel rollout collection (repro.parallel).  ``num_envs`` envs
    #: step in lockstep through one stacked policy forward pass;
    #: ``workers > 0`` shards them over subprocesses.  The default
    #: (1 env, 0 workers, vectorize unset) is the serial Algorithm-1
    #: loop, byte-for-byte.
    num_envs: int = 1
    workers: int = 0
    #: Force the vectorized collector on/off; None = automatic
    #: (vectorized iff ``num_envs > 1`` or ``workers > 0``).
    vectorize: Optional[bool] = None
    #: Self-healing workers (repro.resilience): crashed/hung subprocess
    #: workers are respawned, resynced and the in-flight step replayed
    #: instead of aborting the run.  Requires ``workers > 0``.
    supervise: bool = False
    #: Total worker-restart budget before the supervisor escalates.
    max_restarts: int = 8

    def validate(self) -> "TrainerConfig":
        if self.n_episodes <= 0:
            raise ValueError("n_episodes must be positive")
        if self.buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if self.checkpoint_every > 0 and not self.checkpoint_path:
            raise ValueError("checkpoint_every requires checkpoint_path")
        if self.checkpoint_keep < 1:
            raise ValueError("checkpoint_keep must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.supervise and self.workers <= 0:
            raise ValueError(
                "supervise=True needs subprocess workers (workers > 0); "
                "a crash in the parent process cannot be supervised"
            )
        if self.num_envs <= 0:
            raise ValueError("num_envs must be positive")
        if self.num_envs > self.buffer_size:
            raise ValueError("num_envs cannot exceed buffer_size")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.vectorize is False and (self.num_envs > 1 or self.workers > 0):
            raise ValueError(
                "vectorize=False contradicts num_envs > 1 / workers > 0"
            )
        if self.use_vectorized and self.algorithm == "ddpg":
            raise ValueError(
                "vectorized collection supports ppo/a2c only, not ddpg "
                "(its replay memory is inherently sequential here)"
            )
        self.ppo.validate()
        return self

    @property
    def use_vectorized(self) -> bool:
        """Whether training goes through the repro.parallel collector."""
        if self.vectorize is not None:
            return bool(self.vectorize)
        return self.num_envs > 1 or self.workers > 0


class OfflineTrainer:
    """Trains a PPO agent on an :class:`FLSchedulingEnv` (Algorithm 1)."""

    def __init__(
        self,
        env: Optional[FLSchedulingEnv] = None,
        config: Optional[TrainerConfig] = None,
        rng: SeedLike = None,
        env_spec=None,
    ):
        self.config = (config or TrainerConfig()).validate()
        if env is None and env_spec is None:
            raise ValueError("OfflineTrainer needs an env or an env_spec")
        if self.config.use_vectorized and env_spec is None:
            raise ValueError(
                "vectorized training (num_envs > 1 / workers > 0) requires "
                "env_spec — workers rebuild envs from its picklable recipe"
            )
        #: Picklable recipe for (re)building envs in vec workers.
        self.env_spec = env_spec
        if env is None:
            # Template env: provides dims for network construction, and
            # *is* env 0 of the serial (non-vectorized) path.
            env = env_spec.build(0)
        self.env = env
        #: Live vectorized env while _train_vectorized runs (checkpoints
        #: read its per-env RNG streams).
        self._vec_env = None
        #: RNG streams restored by resume() before the vec env exists.
        self._pending_vec_rng = None
        #: Next episode index; advanced by :meth:`train`, restored by
        #: :meth:`resume` so an interrupted run continues where it died.
        self._episode = 0
        #: True when the last :meth:`train` call stopped early because a
        #: ``stop`` predicate (e.g. a SIGTERM drain) fired.
        self.drained = False
        rng = as_generator(rng)
        if self.config.algorithm == "ddpg":
            from repro.rl.ddpg import DDPGAgent, DDPGConfig

            self.agent = DDPGAgent(
                DDPGConfig(
                    obs_dim=env.obs_dim,
                    act_dim=env.act_dim,
                    hidden=tuple(self.config.hidden),
                    gamma=self.config.ppo.gamma,
                    normalize_obs=self.config.normalize_obs,
                    scale_rewards=self.config.scale_rewards,
                ),
                rng=rng,
            )
            self.history = TrainingHistory()
            return
        agent_config = AgentConfig(
            obs_dim=env.obs_dim,
            act_dim=env.act_dim,
            hidden=tuple(self.config.hidden),
            buffer_size=self.config.buffer_size,
            n_envs=self.config.num_envs if self.config.use_vectorized else 1,
            normalize_obs=self.config.normalize_obs,
            scale_rewards=self.config.scale_rewards,
            init_log_std=self.config.init_log_std,
            algorithm=self.config.algorithm,
            policy=self.config.policy,
            ppo=self.config.ppo,
        )
        self.agent = PPOAgent(agent_config, rng=rng)
        self.history = TrainingHistory()

    def run_episode(self) -> dict:
        """One training episode: lines 6-24 of Algorithm 1."""
        env = self.env
        san = _sanitizer.ACTIVE
        if san is not None:
            san.note_episode(self._episode)
        tel = get_telemetry()
        instrumented = tel.enabled
        t_episode = time.perf_counter() if instrumented else 0.0
        env_s = 0.0
        obs = env.reset()
        costs, rewards, times, energies = [], [], [], []
        done = False
        while not done:
            action, log_prob, value = self.agent.act(obs)
            if instrumented:
                t0 = time.perf_counter()
                step = env.step(action)
                env_s += time.perf_counter() - t0
                t0 = time.perf_counter()
                stats = self.agent.observe(
                    obs, action, step.reward, step.observation,
                    step.done, log_prob, value,
                )
                if stats is not None:
                    tel.on_update(
                        stats,
                        self.config.algorithm,
                        wall_s=time.perf_counter() - t0,
                        episode=self._episode,
                    )
            else:
                step = env.step(action)
                stats = self.agent.observe(
                    obs, action, step.reward, step.observation,
                    step.done, log_prob, value,
                )
            if stats is not None:
                self.history.record_update(stats)
            costs.append(step.info["cost"])
            rewards.append(step.reward)
            times.append(step.info["iteration_time_s"])
            energies.append(step.info["total_energy"])
            obs = step.observation
            done = step.done
        summary = {
            "avg_cost": float(np.mean(costs)),
            "avg_reward": float(np.mean(rewards)),
            "avg_time_s": float(np.mean(times)),
            "avg_energy": float(np.mean(energies)),
            "episode_len": len(costs),
        }
        self.history.record_episode(
            summary["avg_cost"], summary["avg_reward"],
            summary["avg_time_s"], summary["avg_energy"],
        )
        if instrumented:
            tel.event(
                "episode",
                index=self._episode,
                wall_s=time.perf_counter() - t_episode,
                env_s=env_s,
                **summary,
            )
        return summary

    def train(self, progress_callback=None, stop=None) -> TrainingHistory:
        """Run the full offline training (the ``for episode`` loop).

        Starts from :attr:`_episode` (0 on a fresh trainer, the stored
        episode after :meth:`resume`), so a killed run picks up exactly
        where its last checkpoint left off.

        ``stop`` is an optional zero-argument predicate checked after
        every episode (batch); when it returns true — e.g. a
        :class:`repro.resilience.GracefulDrain` armed by SIGTERM — the
        trainer finishes the in-flight episode, writes a final
        checkpoint (if a checkpoint path is configured), sets
        :attr:`drained` and returns.
        """
        cfg = self.config
        self.drained = False
        if cfg.use_vectorized:
            return self._train_vectorized(progress_callback, stop)
        for episode in range(self._episode, cfg.n_episodes):
            self.agent.updater.set_progress(episode / max(cfg.n_episodes - 1, 1))
            summary = self.run_episode()
            self._episode = episode + 1
            if (
                cfg.checkpoint_every > 0
                and self._episode % cfg.checkpoint_every == 0
            ):
                self.save_checkpoint(cfg.checkpoint_path)
            if progress_callback is not None:
                progress_callback(episode, summary)
            if stop is not None and stop():
                self._drain()
                break
            if (
                cfg.early_stop_window > 0
                and self.history.converged(
                    window=cfg.early_stop_window, rel_tol=cfg.early_stop_rel_tol
                )
            ):
                break
        self.agent.freeze()
        return self.history

    def _drain(self) -> None:
        """Cooperative stop: persist a resumable final checkpoint."""
        self.drained = True
        if self.config.checkpoint_path:
            self.save_checkpoint(self.config.checkpoint_path)

    def _train_vectorized(self, progress_callback=None, stop=None) -> TrainingHistory:
        """Training over a vectorized env (episode batches of num_envs).

        Episodes advance ``num_envs`` at a time; checkpoints land only at
        batch boundaries, so resuming needs just the agent/optimizer
        state, the partially-filled buffer and every per-env RNG stream
        (captured as ``rng/venv{i}``) — no mid-episode simulator state.
        With one env this loop consumes identical RNG/normalizer streams
        to the serial path above.
        """
        from repro.parallel import VecRolloutCollector, make_vec_env

        cfg = self.config
        n = cfg.num_envs
        supervisor = None
        if cfg.supervise:
            from repro.resilience.supervisor import SupervisorConfig

            supervisor = SupervisorConfig(max_restarts=cfg.max_restarts)
        with make_vec_env(
            self.env_spec, n, workers=cfg.workers,
            supervise=cfg.supervise, supervisor=supervisor,
        ) as venv:
            self._vec_env = venv
            try:
                if self._pending_vec_rng is not None:
                    venv.set_rng_states(self._pending_vec_rng)
                    self._pending_vec_rng = None
                collector = VecRolloutCollector(venv, self.agent, history=self.history)
                tel = get_telemetry()
                while self._episode < cfg.n_episodes:
                    san = _sanitizer.ACTIVE
                    if san is not None:
                        san.note_episode(self._episode)
                    self.agent.updater.set_progress(
                        self._episode / max(cfg.n_episodes - 1, 1)
                    )
                    summaries = collector.run_episode_batch()
                    prev = self._episode
                    self._episode = prev + n
                    if tel.enabled:
                        # Episode records must precede the checkpoint so a
                        # resume's rewind never drops an already-counted
                        # episode from the log.
                        for i, summary in enumerate(summaries):
                            tel.event("episode", index=prev + i, **summary)
                    if cfg.checkpoint_every > 0 and (
                        prev // cfg.checkpoint_every
                        != self._episode // cfg.checkpoint_every
                    ):
                        self.save_checkpoint(cfg.checkpoint_path)
                    if progress_callback is not None:
                        for i, summary in enumerate(summaries):
                            progress_callback(prev + i, summary)
                    if stop is not None and stop():
                        self._drain()
                        break
                    if cfg.early_stop_window > 0 and self.history.converged(
                        window=cfg.early_stop_window,
                        rel_tol=cfg.early_stop_rel_tol,
                    ):
                        break
            finally:
                self._vec_env = None
        self.agent.freeze()
        return self.history

    def save_agent(self, path: str) -> None:
        self.agent.save(path)

    # -- crash-safe checkpointing ------------------------------------------
    def _rng_streams(self) -> dict:
        """Every RNG whose stream position defines the run's future."""
        streams = {"env": self.env.rng}
        if hasattr(self.agent, "_sample_rng"):
            streams["sample"] = self.agent._sample_rng
        if hasattr(self.agent, "_rng"):
            streams["agent"] = self.agent._rng
        updater = self.agent.updater
        if updater is not self.agent and hasattr(updater, "rng"):
            streams["update"] = updater.rng
        return streams

    def save_checkpoint(self, path: str) -> None:
        """Persist the *complete* training state, resumable bit-exactly.

        Beyond the agent weights this captures the optimizer moments, the
        partially-filled rollout buffer (or DDPG replay memory), the
        training history and the position of every RNG stream — so
        :meth:`resume` + :meth:`train` reproduces the uninterrupted run.
        """
        from repro.utils.serialization import pack_rng_state, save_npz_state

        state = {f"agent/{k}": v for k, v in self.agent.state_dict().items()}
        state["trainer/episode"] = np.asarray(self._episode)
        for key, val in self.history.as_dict().items():
            state[f"history/{key}"] = val
        updater = self.agent.updater
        for name, opt in (("actor", updater.actor_opt), ("critic", updater.critic_opt)):
            for key, val in opt.state_dict().items():
                state[f"opt/{name}/{key}"] = val
        buf = getattr(self.agent, "buffer", None)
        if buf is not None:
            state["buffer/size"] = np.asarray(len(buf))
            for key in (
                "states", "actions", "rewards", "next_states",
                "dones", "log_probs", "values", "env_ids",
            ):
                state[f"buffer/{key}"] = getattr(buf, key)
        mem = getattr(self.agent, "memory", None)
        if mem is not None:
            state["replay/size"] = np.asarray(len(mem))
            state["replay/next"] = np.asarray(mem._next)
            for key in ("states", "actions", "rewards", "next_states", "dones"):
                state[f"replay/{key}"] = getattr(mem, key)
        for name, gen in self._rng_streams().items():
            state[f"rng/{name}"] = pack_rng_state(gen)
        # Vectorized runs: each env's stream lives in a (possibly remote)
        # worker; capture them all so resume replays bit-exactly.
        if self._vec_env is not None:
            from repro.utils.serialization import pack_state_dict

            for i, rng_state in enumerate(self._vec_env.get_rng_states()):
                state[f"rng/venv{i}"] = pack_state_dict(rng_state)
        elif self._pending_vec_rng is not None:
            from repro.utils.serialization import pack_state_dict

            for i, rng_state in enumerate(self._pending_vec_rng):
                state[f"rng/venv{i}"] = pack_state_dict(rng_state)
        tel = get_telemetry()
        if tel.enabled:
            # The resume watermark: every event emitted so far is part of
            # the checkpointed past (state_dict() flushes the sink first).
            state["obs/seq"] = np.asarray(tel.state_dict()["seq"])
        # Durable publication: fsync-before-rename + sha256 sidecar, and
        # (checkpoint_keep > 1) a rotation of last-good generations that
        # resume() falls back through on corruption.
        save_npz_state(path, state, keep=self.config.checkpoint_keep)

    def resume(self, path: str) -> int:
        """Restore a :meth:`save_checkpoint` state; returns the episode.

        The trainer must have been constructed with the same environment
        and configuration as the one that wrote the checkpoint.

        Verifies the checkpoint's sha256 sidecar; a truncated/corrupt
        newest generation falls back through the ``checkpoint_keep``
        rotation (``path.1``, ``path.2``, ...) to the newest good one.
        """
        from repro.resilience.checkpoint import load_checkpoint_with_fallback
        from repro.utils.serialization import unpack_rng_state

        state, _used = load_checkpoint_with_fallback(
            path, keep=self.config.checkpoint_keep
        )

        def _sub(prefix: str) -> dict:
            cut = len(prefix)
            return {k[cut:]: v for k, v in state.items() if k.startswith(prefix)}

        self.agent.load_state_dict(_sub("agent/"))
        self._episode = int(np.asarray(state["trainer/episode"]))
        self.history = TrainingHistory()
        self.history.load_dict(_sub("history/"))
        updater = self.agent.updater
        updater.actor_opt.load_state_dict(_sub("opt/actor/"))
        updater.critic_opt.load_state_dict(_sub("opt/critic/"))
        buf = getattr(self.agent, "buffer", None)
        if buf is not None and "buffer/size" in state:
            for key in (
                "states", "actions", "rewards", "next_states",
                "dones", "log_probs", "values", "env_ids",
            ):
                # env_ids is absent from pre-vectorization checkpoints.
                if f"buffer/{key}" in state:
                    getattr(buf, key)[...] = state[f"buffer/{key}"]
            buf._size = int(np.asarray(state["buffer/size"]))
        mem = getattr(self.agent, "memory", None)
        if mem is not None and "replay/size" in state:
            for key in ("states", "actions", "rewards", "next_states", "dones"):
                getattr(mem, key)[...] = state[f"replay/{key}"]
            mem._size = int(np.asarray(state["replay/size"]))
            mem._next = int(np.asarray(state["replay/next"]))
        for name, gen in self._rng_streams().items():
            key = f"rng/{name}"
            if key in state:
                unpack_rng_state(gen, state[key])
        venv_keys = sorted(
            (k for k in state if k.startswith("rng/venv")),
            key=lambda k: int(k[len("rng/venv"):]),
        )
        if venv_keys:
            from repro.utils.serialization import unpack_state_dict

            streams = [unpack_state_dict(state[k]) for k in venv_keys]
            if self._vec_env is not None:
                self._vec_env.set_rng_states(streams)
            else:
                # train() applies these once the vec env exists.
                self._pending_vec_rng = streams
        if "obs/seq" in state:
            tel = get_telemetry()
            if tel.enabled:
                # Discard events the crashed run emitted after its last
                # checkpoint; the resumed run re-emits them exactly once.
                tel.rewind(int(np.asarray(state["obs/seq"])))
        return self._episode
