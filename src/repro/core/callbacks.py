"""Training history: the data behind Fig. 6.

Records per-episode average system cost (Fig. 6(b)) and per-update DRL
losses (Fig. 6(a)), plus convergence detection used by tests and the
Fig. 6 bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass
class TrainingHistory:
    """Accumulates DRL training diagnostics."""

    episode_costs: List[float] = field(default_factory=list)
    episode_rewards: List[float] = field(default_factory=list)
    episode_times: List[float] = field(default_factory=list)
    episode_energies: List[float] = field(default_factory=list)
    update_policy_losses: List[float] = field(default_factory=list)
    update_value_losses: List[float] = field(default_factory=list)
    update_total_losses: List[float] = field(default_factory=list)
    update_entropies: List[float] = field(default_factory=list)
    update_kls: List[float] = field(default_factory=list)
    #: Updates refused/rolled back by the non-finite guards
    #: (:mod:`repro.rl.guards`); their stats are not mixed into the curves.
    skipped_updates: int = 0

    def record_episode(
        self, avg_cost: float, avg_reward: float, avg_time: float, avg_energy: float
    ) -> None:
        self.episode_costs.append(float(avg_cost))
        self.episode_rewards.append(float(avg_reward))
        self.episode_times.append(float(avg_time))
        self.episode_energies.append(float(avg_energy))

    def record_update(self, stats) -> None:
        """Record a :class:`repro.rl.ppo.UpdateStats`."""
        if getattr(stats, "skipped", False):
            self.skipped_updates += 1
            return
        self.update_policy_losses.append(stats.policy_loss)
        self.update_value_losses.append(stats.value_loss)
        self.update_total_losses.append(stats.total_loss)
        self.update_entropies.append(stats.entropy)
        self.update_kls.append(stats.approx_kl)

    @property
    def n_episodes(self) -> int:
        return len(self.episode_costs)

    @property
    def n_updates(self) -> int:
        return len(self.update_total_losses)

    def smoothed_costs(self, window: int = 10) -> np.ndarray:
        """Moving average of per-episode cost (the Fig. 6(b) curve)."""
        costs = np.asarray(self.episode_costs, dtype=np.float64)
        if costs.size == 0:
            return costs
        window = max(1, min(window, costs.size))
        kernel = np.ones(window) / window
        return np.convolve(costs, kernel, mode="valid")

    def converged(
        self, window: int = 20, rel_tol: float = 0.05
    ) -> bool:
        """Heuristic convergence check: the smoothed cost of the last
        window is within ``rel_tol`` of the window before it."""
        costs = self.smoothed_costs(window=5)
        if costs.size < 2 * window:
            return False
        recent = costs[-window:].mean()
        previous = costs[-2 * window : -window].mean()
        return abs(recent - previous) <= rel_tol * abs(previous)

    def improvement(self, head: int = 10, tail: int = 10) -> float:
        """Relative cost reduction from the first to the last episodes."""
        costs = np.asarray(self.episode_costs, dtype=np.float64)
        if costs.size < head + tail:
            raise ValueError("not enough episodes for improvement estimate")
        start = costs[:head].mean()
        end = costs[-tail:].mean()
        return float((start - end) / start)

    def as_dict(self) -> Dict[str, np.ndarray]:
        return {
            "episode_costs": np.asarray(self.episode_costs),
            "episode_rewards": np.asarray(self.episode_rewards),
            "episode_times": np.asarray(self.episode_times),
            "episode_energies": np.asarray(self.episode_energies),
            "update_policy_losses": np.asarray(self.update_policy_losses),
            "update_value_losses": np.asarray(self.update_value_losses),
            "update_total_losses": np.asarray(self.update_total_losses),
            "update_entropies": np.asarray(self.update_entropies),
            "update_kls": np.asarray(self.update_kls),
            "skipped_updates": np.asarray(self.skipped_updates),
        }

    def load_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore the history from an :meth:`as_dict`-style mapping."""
        for name in (
            "episode_costs",
            "episode_rewards",
            "episode_times",
            "episode_energies",
            "update_policy_losses",
            "update_value_losses",
            "update_total_losses",
            "update_entropies",
            "update_kls",
        ):
            if name in state:
                setattr(self, name, [float(v) for v in np.asarray(state[name])])
        if "skipped_updates" in state:
            self.skipped_updates = int(np.asarray(state["skipped_updates"]))
