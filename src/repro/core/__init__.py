"""The paper's contribution: experience-driven frequency allocation.

:class:`OfflineTrainer` implements Algorithm 1 (offline DRL training over
the trace-driven simulated environment); :class:`DRLAllocator` is the
online-reasoning stage that drives a live system with the trained actor
only (Section V.B.2).
"""

from repro.core.callbacks import TrainingHistory
from repro.core.drl_allocator import DRLAllocator
from repro.core.trainer import OfflineTrainer, TrainerConfig
from repro.core.transfer import TransferredAllocator, transfer_allocator
from repro.core.online import OnlineAdaptingAllocator

__all__ = [
    "TrainingHistory",
    "DRLAllocator",
    "OfflineTrainer",
    "TrainerConfig",
    "TransferredAllocator",
    "transfer_allocator",
    "OnlineAdaptingAllocator",
]
