"""Online adaptation: keep learning during deployment.

The paper's pipeline is strictly offline-train / online-reason (Section
V.B).  Because the parameter server sees every reward anyway, nothing
prevents it from continuing PPO updates while the system serves real
traffic — the policy then tracks network-distribution drift that offline
training never saw.  :class:`OnlineAdaptingAllocator` wraps a
:class:`repro.rl.agent.PPOAgent` so each ``allocate`` both acts
(with exploration) and feeds the realized reward back into the agent.

The allocator needs the reward of the *previous* iteration, which is only
known once the system has stepped; it therefore reads
``system.history[-1]`` on the next call — exactly the information flow
of Algorithm 1's online loop.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.baselines.base import Allocator
from repro.env.wrappers import ActionMapper
from repro.rl.agent import PPOAgent


class OnlineAdaptingAllocator(Allocator):
    """DRL allocator that continues PPO training while deployed.

    Compared with :class:`repro.core.drl_allocator.DRLAllocator` (frozen,
    deterministic), this allocator samples from the stochastic policy and
    performs the Algorithm-1 buffer/update cycle on live transitions.
    ``adapt=False`` turns it into a frozen stochastic baseline so the
    adaptation effect can be isolated.
    """

    name = "drl-online"

    def __init__(
        self,
        agent: PPOAgent,
        adapt: bool = True,
        action_floor_frac: float = 0.1,
    ):
        self.agent = agent
        self.adapt = bool(adapt)
        self.action_floor_frac = float(action_floor_frac)
        self._mapper: Optional[ActionMapper] = None
        self._pending = None  # (obs, action, log_prob, value)

    def reset(self, system) -> None:
        self._mapper = ActionMapper(
            system.fleet.max_frequencies, self.action_floor_frac
        )
        self._pending = None
        if self.adapt:
            # re-open the normalizers closed by trainer.freeze()
            self.agent.obs_norm.unfreeze()
            self.agent.reward_scaler.frozen = False

    def allocate(self, system) -> np.ndarray:
        if self._mapper is None:
            self.reset(system)
        obs = system.bandwidth_state().ravel()

        if self.adapt and self._pending is not None and system.history:
            prev_obs, prev_action, prev_logp, prev_value = self._pending
            reward = system.history[-1].reward
            self.agent.observe(
                prev_obs, prev_action, reward, obs, False, prev_logp, prev_value
            )

        if self.adapt:
            action, log_prob, value = self.agent.act(obs)
            self._pending = (obs, action, log_prob, value)
        else:
            action = self.agent.policy_action(obs)
        return self._mapper.to_frequencies(action)

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        hidden: Optional[Tuple[int, ...]] = None,
        adapt: bool = True,
        action_floor_frac: float = 0.1,
        keep: int = 3,
    ) -> "OnlineAdaptingAllocator":
        """Rehydrate an adapting allocator from a saved agent checkpoint.

        Mirrors :meth:`repro.core.drl_allocator.DRLAllocator.from_checkpoint`
        (rotation-chain fallback, hidden/policy inferred from weight
        shapes) but leaves the agent *unfrozen* so live PPO updates can
        continue from the checkpointed optimizer state.
        """
        from repro.resilience.checkpoint import load_checkpoint_with_fallback
        from repro.rl.agent import AgentConfig
        from repro.serve.artifact import detect_policy_kind, infer_hidden

        state, _used = load_checkpoint_with_fallback(path, keep=keep)
        obs_dim = int(np.asarray(state["meta/obs_dim"]))
        act_dim = int(np.asarray(state["meta/act_dim"]))
        agent = PPOAgent(
            AgentConfig(
                obs_dim=obs_dim,
                act_dim=act_dim,
                hidden=infer_hidden(state) if hidden is None else tuple(hidden),
                policy=detect_policy_kind(state),
            ),
            rng=0,
        )
        agent.load_state_dict(state)
        return cls(agent, adapt=adapt, action_floor_frac=action_floor_frac)
