"""Simulation of a single synchronized FL iteration (Fig. 4 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.fleet import DeviceFleet
from repro.sim.cost import CostModel


@dataclass(frozen=True)
class IterationResult:
    """All per-iteration quantities the paper defines.

    Attributes mirror Table I: ``compute_times`` is ``t_cmp_i^k`` (Eq. 1),
    ``upload_times`` is ``t_com_i^k`` (Eqs. 2-3), ``device_times`` is
    ``T_i^k`` (Eq. 4), ``iteration_time`` is ``T^k`` (Eq. 5), ``energies``
    is ``E_i^k`` (Eq. 6), ``idle_times`` is ``Delta t_i^k`` and
    ``avg_bandwidths`` is the realized ``B_i^k`` of Eq. (3).
    """

    start_time: float
    frequencies: np.ndarray
    compute_times: np.ndarray
    upload_times: np.ndarray
    device_times: np.ndarray
    iteration_time: float
    energies: np.ndarray
    idle_times: np.ndarray
    avg_bandwidths: np.ndarray
    cost: float
    reward: float
    #: Boolean mask of devices that *completed* this iteration (client
    #: selection support; all-true in the paper's full-participation mode;
    #: under fault injection, devices that dropped out or missed the
    #: round deadline are excluded here).
    participants: np.ndarray = None
    #: Boolean mask of devices that *started* the round (post-dropout).
    #: Differs from ``participants`` only when a deadline was missed.
    attempted: np.ndarray = None
    #: Whole failed round attempts (quorum misses) preceding this result.
    failed_attempts: int = 0

    @property
    def total_energy(self) -> float:
        return float(np.sum(self.energies))

    @property
    def end_time(self) -> float:
        """Start of the next iteration, Eq. (11)."""
        return self.start_time + self.iteration_time

    @property
    def slowest_device(self) -> int:
        return int(np.argmax(self.device_times))

    @property
    def n_participants(self) -> int:
        """Count of devices whose update made this round's aggregation."""
        if self.participants is None:
            return int(self.frequencies.size)
        return int(np.sum(self.participants))


def _simulate_full_round(
    fleet: DeviceFleet,
    frequencies: np.ndarray,
    start_time: float,
    model_size_mbit: float,
    cost_model: CostModel,
) -> IterationResult:
    """Fault-free full-participation iteration (bit-identical fast path).

    Every operation mirrors :func:`simulate_iteration` with an all-true
    participation mask; redundant per-device revalidation and the no-op
    ``np.where(mask, ...)`` selects are elided.
    """
    n = fleet.n
    freqs = fleet.clamp_frequencies(frequencies)
    # Eq. (1) — same expression as DeviceFleet.compute_times, minus the
    # positivity re-check (clamp_frequencies already enforced the floor).
    t_cmp = fleet.cycle_budgets / np.minimum(freqs, fleet.max_frequencies)
    # Eqs. (2)-(3): one vectorized upload-time query for the whole fleet,
    # bit-identical to per-device BandwidthTrace.time_to_transfer calls
    # (see upload_times_reference / tests/test_traces_kernel.py).
    t_com = fleet.trace_kernel.time_to_transfer(
        start_time + t_cmp, model_size_mbit
    )
    device_times = t_cmp + t_com                             # Eq. (4)
    iteration_time = float(device_times.max())               # Eq. (5)
    idle = iteration_time - device_times
    energies = fleet.compute_energies(freqs) + fleet.tx_powers * t_com  # Eq. (6)
    if fleet.has_idle_power:
        energies = energies + fleet.idle_powers * np.maximum(idle, 0.0)
    avg_bw = model_size_mbit / np.maximum(t_com, 1e-300)
    cost = cost_model.cost(iteration_time, float(energies.sum()))
    everyone = np.ones(n, dtype=bool)
    return IterationResult(
        start_time=float(start_time),
        frequencies=freqs,
        compute_times=t_cmp,
        upload_times=t_com,
        device_times=device_times,
        iteration_time=iteration_time,
        energies=energies,
        idle_times=idle,
        avg_bandwidths=avg_bw,
        cost=cost,
        reward=-cost,
        participants=everyone,
        attempted=everyone,
    )


def upload_times_reference(
    fleet: DeviceFleet,
    start_times: np.ndarray,
    model_size_mbit: float,
) -> np.ndarray:
    """Per-device scalar Eq. (2)-(3) upload times (reference semantics).

    This is the loop the vectorized fast path replaced; it remains the
    ground truth the kernel must match bit-for-bit and the baseline the
    profiling harness (``repro profile rollout``) measures speedup
    against.
    """
    t_com = np.empty(fleet.n, dtype=np.float64)
    for i, device in enumerate(fleet):
        t_com[i] = device.trace.time_to_transfer(
            float(start_times[i]), model_size_mbit
        )
    return t_com


def _participation_mask(n: int, participants) -> np.ndarray:
    if participants is None:
        return np.ones(n, dtype=bool)
    mask = np.asarray(participants, dtype=bool)
    if mask.shape != (n,):
        raise ValueError(f"participants mask must have shape ({n},)")
    if not mask.any():
        raise ValueError("at least one device must participate")
    return mask


def simulate_iteration(
    fleet: DeviceFleet,
    frequencies: np.ndarray,
    start_time: float,
    model_size_mbit: float,
    cost_model: CostModel,
    participants: np.ndarray = None,
    faults=None,
    deadline: float = None,
) -> IterationResult:
    """Simulate one synchronized iteration starting at ``start_time``.

    ``frequencies`` are the DRL/baseline-chosen ``delta_i^k`` (GHz); they
    are clamped into ``(0, delta_max]`` here so every allocator sees the
    identical feasibility treatment.  ``participants`` (boolean mask)
    restricts the iteration to a selected subset of clients: excluded
    devices neither compute nor upload, contribute zero energy and do not
    gate the iteration time (client-selection support, cf. Nishio &
    Yonetani).

    ``faults`` (a :class:`repro.faults.RoundFaults`) injects straggler
    compute slowdowns and transient upload failures with retry/backoff;
    the retry airtime is charged to ``t_com`` and to the Eq. (6)
    transmission energy.  Dropout is applied by the *caller* (see
    :meth:`repro.sim.system.FLSystem.step`) by shrinking ``participants``.

    ``deadline`` (``T_max``, seconds) caps the round: devices whose
    ``T_i^k`` exceeds it are excluded from ``result.participants`` (the
    server aggregates only the survivors) and — since the server must
    wait out the deadline to declare them missing — the iteration time
    becomes ``T_max`` whenever anyone misses it.  With faults and
    deadline both ``None`` the computation is bit-identical to the
    original fault-free simulator.
    """
    if model_size_mbit <= 0:
        raise ValueError("model_size_mbit must be positive")
    if deadline is not None and deadline <= 0:
        raise ValueError("deadline must be positive when given")
    if participants is None and faults is None and deadline is None:
        # Full-participation fault-free round: the paper's Eqs. (1)-(6)
        # with no masking. Same arithmetic as below with an all-true
        # mask, minus the mask bookkeeping — this is the rollout
        # collector's hot path.
        return _simulate_full_round(
            fleet, frequencies, start_time, model_size_mbit, cost_model
        )
    mask = _participation_mask(fleet.n, participants)
    freqs = fleet.clamp_frequencies(frequencies)
    t_cmp = fleet.compute_times(freqs)                       # Eq. (1)
    if faults is not None:
        t_cmp = t_cmp * faults.slowdown
    t_com = np.zeros(fleet.n, dtype=np.float64)
    t_air = t_com  # aliases the same array when no retries happen
    if faults is not None and np.any(faults.upload_failures[mask] > 0):
        t_air = np.zeros(fleet.n, dtype=np.float64)
    for i, device in enumerate(fleet):                       # Eqs. (2)-(3)
        if mask[i]:
            n_fail = int(faults.upload_failures[i]) if faults is not None else 0
            if n_fail > 0:
                from repro.faults.retry import upload_time_with_retries

                t_com[i], t_air[i] = upload_time_with_retries(
                    device.trace, start_time + t_cmp[i], model_size_mbit,
                    n_fail, faults.attempt_fracs[i], faults.backoffs,
                )
            else:
                t_com[i] = device.upload_time(start_time + t_cmp[i], model_size_mbit)
                if t_air is not t_com:
                    t_air[i] = t_com[i]
    t_cmp = np.where(mask, t_cmp, 0.0)
    device_times = t_cmp + t_com                             # Eq. (4)
    if deadline is not None:
        completed = mask & (device_times <= deadline)
        if np.array_equal(completed, mask):
            iteration_time = float(device_times[mask].max())  # Eq. (5)
        else:
            # The server only learns a device missed T_max at T_max.
            iteration_time = float(deadline)
    else:
        completed = mask
        iteration_time = float(device_times[mask].max())     # Eq. (5)
    idle = np.where(mask, iteration_time - device_times, iteration_time)
    energies = np.where(                                     # Eq. (6)
        mask,
        fleet.compute_energies(freqs)
        + fleet.tx_powers * t_air
        # idle-power extension (zero in the paper-faithful configuration)
        + fleet.idle_powers * np.maximum(idle, 0.0),
        0.0,
    )
    with np.errstate(divide="ignore"):
        avg_bw = np.where(completed, model_size_mbit / np.maximum(t_com, 1e-300), np.nan)
    cost = cost_model.cost(iteration_time, float(energies.sum()))
    return IterationResult(
        start_time=float(start_time),
        frequencies=freqs,
        compute_times=t_cmp,
        upload_times=t_com,
        device_times=device_times,
        iteration_time=iteration_time,
        energies=energies,
        idle_times=idle,
        avg_bandwidths=avg_bw,
        cost=cost,
        reward=-cost,
        participants=completed,
        attempted=mask,
    )
