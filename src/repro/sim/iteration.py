"""Simulation of a single synchronized FL iteration (Fig. 4 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.fleet import DeviceFleet
from repro.sim.cost import CostModel


@dataclass(frozen=True)
class IterationResult:
    """All per-iteration quantities the paper defines.

    Attributes mirror Table I: ``compute_times`` is ``t_cmp_i^k`` (Eq. 1),
    ``upload_times`` is ``t_com_i^k`` (Eqs. 2-3), ``device_times`` is
    ``T_i^k`` (Eq. 4), ``iteration_time`` is ``T^k`` (Eq. 5), ``energies``
    is ``E_i^k`` (Eq. 6), ``idle_times`` is ``Delta t_i^k`` and
    ``avg_bandwidths`` is the realized ``B_i^k`` of Eq. (3).
    """

    start_time: float
    frequencies: np.ndarray
    compute_times: np.ndarray
    upload_times: np.ndarray
    device_times: np.ndarray
    iteration_time: float
    energies: np.ndarray
    idle_times: np.ndarray
    avg_bandwidths: np.ndarray
    cost: float
    reward: float
    #: Boolean mask of devices that trained this iteration (client
    #: selection support; all-true in the paper's full-participation mode).
    participants: np.ndarray = None

    @property
    def total_energy(self) -> float:
        return float(np.sum(self.energies))

    @property
    def end_time(self) -> float:
        """Start of the next iteration, Eq. (11)."""
        return self.start_time + self.iteration_time

    @property
    def slowest_device(self) -> int:
        return int(np.argmax(self.device_times))


def simulate_iteration(
    fleet: DeviceFleet,
    frequencies: np.ndarray,
    start_time: float,
    model_size_mbit: float,
    cost_model: CostModel,
    participants: np.ndarray = None,
) -> IterationResult:
    """Simulate one synchronized iteration starting at ``start_time``.

    ``frequencies`` are the DRL/baseline-chosen ``delta_i^k`` (GHz); they
    are clamped into ``(0, delta_max]`` here so every allocator sees the
    identical feasibility treatment.  ``participants`` (boolean mask)
    restricts the iteration to a selected subset of clients: excluded
    devices neither compute nor upload, contribute zero energy and do not
    gate the iteration time (client-selection support, cf. Nishio &
    Yonetani).
    """
    if model_size_mbit <= 0:
        raise ValueError("model_size_mbit must be positive")
    if participants is None:
        mask = np.ones(fleet.n, dtype=bool)
    else:
        mask = np.asarray(participants, dtype=bool)
        if mask.shape != (fleet.n,):
            raise ValueError(f"participants mask must have shape ({fleet.n},)")
        if not mask.any():
            raise ValueError("at least one device must participate")
    freqs = fleet.clamp_frequencies(frequencies)
    t_cmp = fleet.compute_times(freqs)                       # Eq. (1)
    t_com = np.zeros(fleet.n, dtype=np.float64)
    for i, device in enumerate(fleet):                       # Eqs. (2)-(3)
        if mask[i]:
            t_com[i] = device.upload_time(start_time + t_cmp[i], model_size_mbit)
    t_cmp = np.where(mask, t_cmp, 0.0)
    device_times = t_cmp + t_com                             # Eq. (4)
    iteration_time = float(device_times[mask].max())         # Eq. (5)
    idle = np.where(mask, iteration_time - device_times, iteration_time)
    energies = np.where(                                     # Eq. (6)
        mask,
        fleet.compute_energies(freqs)
        + fleet.tx_powers * t_com
        # idle-power extension (zero in the paper-faithful configuration)
        + fleet.idle_powers * np.maximum(idle, 0.0),
        0.0,
    )
    with np.errstate(divide="ignore"):
        avg_bw = np.where(mask, model_size_mbit / np.maximum(t_com, 1e-300), np.nan)
    cost = cost_model.cost(iteration_time, float(energies.sum()))
    return IterationResult(
        start_time=float(start_time),
        frequencies=freqs,
        compute_times=t_cmp,
        upload_times=t_com,
        device_times=device_times,
        iteration_time=iteration_time,
        energies=energies,
        idle_times=idle,
        avg_bandwidths=avg_bw,
        cost=cost,
        reward=-cost,
        participants=mask,
    )
