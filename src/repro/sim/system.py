"""The federated-learning system clock: chained iterations (Eq. 11)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, List, Optional

import numpy as np

from repro.analysis import sanitizer as _sanitizer
from repro.devices.fleet import DeviceFleet
from repro.faults import FaultConfig, FaultSchedule, RoundFailedError
from repro.obs import get_telemetry
from repro.sim.cost import CostModel
from repro.sim.iteration import IterationResult, simulate_iteration
from repro.utils.rng import SeedLike, as_generator

#: ``hook(pre_state, frequencies, result)`` — the per-round outcome feed.
OutcomeHook = Callable[[np.ndarray, np.ndarray, IterationResult], None]


@dataclass
class SystemConfig:
    """Static configuration of one simulated FL system."""

    #: Model upload payload xi (Mbit).
    model_size_mbit: float = 40.0
    #: Bandwidth-history slot length h (seconds).
    slot_duration: float = 1.0
    #: History depth H (the state holds H+1 slots per device).
    history_slots: int = 8
    cost: CostModel = field(default_factory=CostModel)
    #: Per-round deadline ``T_max`` (seconds); ``None`` disables it.
    #: Devices that exceed it are excluded from the round's aggregation.
    round_deadline_s: Optional[float] = None
    #: Minimum completing devices for a round to count; rounds below the
    #: quorum are retried (fresh faults, clock advanced by the failed
    #: attempt's duration).
    min_quorum: int = 1
    #: Failed attempts tolerated per round before :class:`RoundFailedError`.
    max_round_retries: int = 5

    def validate(self) -> "SystemConfig":
        if self.model_size_mbit <= 0:
            raise ValueError("model_size_mbit must be positive")
        if self.slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        if self.history_slots < 0:
            raise ValueError("history_slots must be non-negative")
        if self.round_deadline_s is not None and self.round_deadline_s <= 0:
            raise ValueError("round_deadline_s must be positive when set")
        if self.min_quorum < 1:
            raise ValueError("min_quorum must be at least 1")
        if self.max_round_retries < 0:
            raise ValueError("max_round_retries must be non-negative")
        return self


class FLSystem:
    """A fleet plus a wall clock: step with frequencies, observe history.

    This is the "federated learning system" box of the paper's Fig. 5:
    the DRL agent (or any baseline allocator) feeds it per-device
    CPU-cycle frequencies; the system advances the clock by the realized
    iteration time (Eq. 11) and exposes the bandwidth-history state.

    ``faults`` (a :class:`repro.faults.FaultConfig` or prepared
    :class:`repro.faults.FaultSchedule`) opts into fault injection:
    dropped devices sit rounds out, stragglers slow down, uploads retry
    with backoff, and blackout windows are layered onto the traces.
    Combined with ``SystemConfig.round_deadline_s`` / ``min_quorum`` the
    system degrades gracefully — rounds aggregate whatever subset
    finished in time, and sub-quorum rounds are retried.
    """

    def __init__(
        self,
        fleet: DeviceFleet,
        config: Optional[SystemConfig] = None,
        faults=None,
    ):
        self.config = (config or SystemConfig()).validate()
        if isinstance(faults, FaultConfig):
            faults = FaultSchedule(faults, fleet.n) if faults.enabled else None
        if faults is not None:
            if faults.n_devices != fleet.n:
                raise ValueError(
                    f"fault schedule built for {faults.n_devices} devices, "
                    f"fleet has {fleet.n}"
                )
            fleet = faults.apply_to_fleet(fleet)
        self.fleet = fleet
        self.faults: Optional[FaultSchedule] = faults
        self.clock = 0.0
        self.iteration = 0
        self.history: List[IterationResult] = []
        #: Sub-quorum round attempts (time/energy they wasted is real).
        self.failed_history: List[IterationResult] = []
        self._last_bw: Optional[np.ndarray] = None
        #: Optional ``hook(pre_state, frequencies, result)`` invoked after
        #: every accepted round with the (N, H+1) bandwidth state the
        #: decision was made from — the experience-store feed
        #: (:meth:`repro.loop.ExperienceStore.record_outcome`).  ``None``
        #: (the default) costs one attribute check per step.
        self.outcome_hook: Optional[OutcomeHook] = None

    @property
    def n_devices(self) -> int:
        return self.fleet.n

    def reset(self, start_time: float = 0.0) -> None:
        """Rewind the system to a (possibly random) start time ``t^1``."""
        if start_time < 0:
            raise ValueError("start_time must be non-negative")
        self.clock = float(start_time)
        self.iteration = 0
        self.history = []
        self.failed_history = []
        self._last_bw = None

    def reset_random(self, rng: SeedLike = None) -> float:
        """Algorithm 1 line 6: randomly select a start time ``t^1``."""
        rng = as_generator(rng)
        horizon = min(trace.duration for trace in (d.trace for d in self.fleet))
        # Leave room for the history window before t^1.
        min_start = (self.config.history_slots + 1) * self.config.slot_duration
        start = float(rng.uniform(min_start, min_start + horizon))
        self.reset(start)
        return start

    def bandwidth_state(self) -> np.ndarray:
        """The DRL state ``s_k``: (N, H+1) matrix of past slot bandwidths.

        Row i is ``B_i^k = (B_i(|t/h|), ..., B_i(|t/h|-H))``, newest first,
        exactly the paper's state definition (Section IV.B.1).
        """
        n_slots = self.config.history_slots + 1
        # One vectorized gather for the whole fleet, bit-identical to
        # per-device BandwidthTrace.history calls (the reference path,
        # enforced by tests/test_traces_kernel.py).
        return self.fleet.trace_kernel.histories(self.clock, n_slots)

    def current_bandwidths(self) -> np.ndarray:
        """Instantaneous per-device bandwidth at the clock (Mbit/s)."""
        return np.array(
            [d.trace.bandwidth_at(self.clock) for d in self.fleet], dtype=np.float64
        )

    def last_observed_bandwidths(self) -> Optional[np.ndarray]:
        """The Eq. (3) average bandwidths realized in the last iteration.

        This is the information the Heuristic baseline of Section V uses:
        "since the last iteration is just ended, the parameter server
        could know all the mobile devices' bandwidth information".
        """
        if self._last_bw is None:
            return None
        return self._last_bw.copy()

    def _validated_frequencies(self, frequencies) -> np.ndarray:
        """Reject the output of a diverged policy before it hits the clock.

        Shape, finiteness and positivity are hard errors; values above
        ``delta_max`` are clamped into ``(0, delta_max]`` downstream by
        :meth:`DeviceFleet.clamp_frequencies` (the paper's feasibility
        treatment), so the bound is enforced either way.
        """
        freqs = np.asarray(frequencies, dtype=np.float64)
        if freqs.shape != (self.fleet.n,):
            raise ValueError(
                f"expected a frequency vector of shape ({self.fleet.n},), "
                f"got {freqs.shape}"
            )
        if not np.all(np.isfinite(freqs)):
            raise ValueError(
                "frequency vector contains non-finite values (NaN/Inf) — "
                "a diverged policy must not reach the system clock"
            )
        if np.any(freqs <= 0):
            raise ValueError(
                "frequencies must lie in (0, delta_max]; got non-positive entries"
            )
        return freqs

    def step(
        self, frequencies: np.ndarray, participants=None, validate: bool = True
    ) -> IterationResult:
        """Run one iteration; advances the clock per Eq. (11).

        ``participants`` optionally restricts the round to a device subset
        (boolean mask) — see :func:`repro.sim.iteration.simulate_iteration`.
        Under fault injection and/or a round deadline, sub-quorum attempts
        are retried (their wasted time advances the clock and they are
        recorded in :attr:`failed_history`); the accepted result's
        ``participants`` holds the devices that actually finished.

        ``validate=False`` skips the frequency sanity checks; callers that
        already guarantee a finite positive vector (the env's action
        mapper) use it to keep the rollout hot path lean.
        """
        if validate:
            freqs = self._validated_frequencies(frequencies)
        else:
            freqs = np.asarray(frequencies, dtype=np.float64)
        san = _sanitizer.ACTIVE
        if san is not None:
            # Cost-model checks inside this round report its index.
            san.note_round(self.iteration)
        # Capture the decision-time state only when someone is listening:
        # bandwidth_state() is a pure trace read (no RNG), so the disabled
        # path stays bit-identical.
        hook = self.outcome_hook
        pre_state = self.bandwidth_state() if hook is not None else None
        cfg = self.config
        if self.faults is None and cfg.round_deadline_s is None:
            result = simulate_iteration(
                self.fleet,
                freqs,
                self.clock,
                cfg.model_size_mbit,
                cfg.cost,
                participants=participants,
            )
        else:
            result = self._faulty_round(freqs, participants)
        self.clock = result.end_time
        self.iteration += 1
        self.history.append(result)
        tel = get_telemetry()
        if tel.enabled:
            tel.on_round(result, iteration=self.iteration - 1, clock=self.clock)
        # Track the freshest Eq. (3) observation per device: devices that
        # sat out keep their previous estimate (the server saw nothing new).
        observed = result.avg_bandwidths
        if self._last_bw is None:
            self._last_bw = np.where(
                result.participants, observed, self.current_bandwidths()
            )
        else:
            self._last_bw = np.where(result.participants, observed, self._last_bw)
        if hook is not None:
            assert pre_state is not None
            hook(pre_state, freqs, result)
        return result

    def _faulty_round(self, freqs: np.ndarray, participants) -> IterationResult:
        """One round under faults/deadline, retrying sub-quorum attempts."""
        cfg = self.config
        n = self.fleet.n
        if participants is None:
            base = np.ones(n, dtype=bool)
        else:
            base = np.asarray(participants, dtype=bool)
            if base.shape != (n,):
                raise ValueError(f"participants mask must have shape ({n},)")
            if not base.any():
                raise ValueError("at least one device must participate")
        tel = get_telemetry()
        failed = 0
        while True:
            rf = (
                self.faults.round_faults(self.iteration, failed)
                if self.faults is not None
                else None
            )
            attempt_mask = base & ~rf.dropped if rf is not None else base
            if tel.enabled and rf is not None and rf.active:
                self._emit_fault_events(tel, rf, base, attempt_mask, failed)
            if attempt_mask.any():
                result = simulate_iteration(
                    self.fleet,
                    freqs,
                    self.clock,
                    cfg.model_size_mbit,
                    cfg.cost,
                    participants=attempt_mask,
                    faults=rf,
                    deadline=cfg.round_deadline_s,
                )
                if result.n_participants >= cfg.min_quorum:
                    return dc_replace(result, failed_attempts=failed)
            else:
                # Everyone dropped before starting: the server waits out
                # the deadline (or one slot) before declaring the round dead.
                result = self._empty_round(
                    cfg.round_deadline_s or cfg.slot_duration
                )
            self.failed_history.append(result)
            self.clock = result.end_time
            failed += 1
            if tel.enabled:
                tel.on_fault(
                    "quorum_miss",
                    iteration=self.iteration,
                    attempt=failed - 1,
                    n_participants=int(result.n_participants),
                    quorum=int(cfg.min_quorum),
                    wasted_s=float(result.iteration_time),
                )
            if failed > cfg.max_round_retries:
                if tel.enabled:
                    tel.on_fault(
                        "round_failed",
                        iteration=self.iteration,
                        attempts=failed,
                        quorum=int(cfg.min_quorum),
                    )
                raise RoundFailedError(
                    f"round {self.iteration} failed {failed} consecutive attempts "
                    f"(quorum {cfg.min_quorum} of {n} devices); raise "
                    f"max_round_retries or lower the fault rate"
                )

    def _emit_fault_events(self, tel, rf, base, attempt_mask, attempt: int) -> None:
        """Structured events for this attempt's realized faults.

        Emitted before the attempt is simulated, so degraded runs that
        die mid-round are still diagnosable post-hoc from the log.
        """
        it = self.iteration
        dropped = np.flatnonzero(base & rf.dropped)
        if dropped.size:
            tel.on_fault(
                "dropout",
                iteration=it,
                attempt=attempt,
                devices=[int(i) for i in dropped],
            )
        stragglers = np.flatnonzero(attempt_mask & (rf.slowdown != 1.0))
        if stragglers.size:
            tel.on_fault(
                "straggler",
                iteration=it,
                attempt=attempt,
                devices=[int(i) for i in stragglers],
                slowdowns=[round(float(rf.slowdown[i]), 4) for i in stragglers],
            )
        retrying = np.flatnonzero(attempt_mask & (rf.upload_failures > 0))
        if retrying.size:
            tel.on_fault(
                "retry",
                iteration=it,
                attempt=attempt,
                devices=[int(i) for i in retrying],
                failures=[int(rf.upload_failures[i]) for i in retrying],
                backoff_s=[
                    round(float(np.sum(rf.backoffs[: rf.upload_failures[i]])), 4)
                    for i in retrying
                ],
            )

    def _empty_round(self, wait_s: float) -> IterationResult:
        """A round attempt in which no device even started."""
        n = self.fleet.n
        zeros = np.zeros(n, dtype=np.float64)
        nobody = np.zeros(n, dtype=bool)
        cost = self.config.cost.cost(float(wait_s), 0.0)
        return IterationResult(
            start_time=self.clock,
            frequencies=zeros.copy(),
            compute_times=zeros.copy(),
            upload_times=zeros.copy(),
            device_times=zeros.copy(),
            iteration_time=float(wait_s),
            energies=zeros.copy(),
            idle_times=np.full(n, float(wait_s)),
            avg_bandwidths=np.full(n, np.nan),
            cost=cost,
            reward=-cost,
            participants=nobody,
            attempted=nobody.copy(),
        )

    def run(
        self,
        allocator,
        n_iterations: int,
        participants_fn=None,
        participants_k: Optional[int] = None,
    ) -> List[IterationResult]:
        """Drive ``n_iterations`` with an allocator (see repro.baselines).

        ``participants_fn`` optionally selects the per-round participant
        subset, so client-selection strategies compose with every
        allocator (and with fault injection): either a callable
        ``(system, round_index) -> bool mask`` or a
        :class:`repro.fl.selection.ClientSelector` instance, which is
        invoked as ``select(system, participants_k)`` (``select(system)``
        when ``participants_k`` is ``None``, for selectors with a default
        subset size).
        """
        if n_iterations <= 0:
            raise ValueError("n_iterations must be positive")
        select = None
        if participants_fn is not None:
            if hasattr(participants_fn, "select"):
                selector = participants_fn
                if participants_k is None:
                    select = lambda system, round_idx: selector.select(system)
                else:
                    select = lambda system, round_idx: selector.select(
                        system, participants_k
                    )
            elif callable(participants_fn):
                select = participants_fn
            else:
                raise TypeError(
                    "participants_fn must be callable or have a .select method"
                )
        results = []
        allocator.reset(self)
        for round_idx in range(n_iterations):
            freqs = allocator.allocate(self)
            mask = select(self, round_idx) if select is not None else None
            results.append(self.step(freqs, participants=mask))
        return results
