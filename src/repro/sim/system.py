"""The federated-learning system clock: chained iterations (Eq. 11)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.devices.fleet import DeviceFleet
from repro.sim.cost import CostModel
from repro.sim.iteration import IterationResult, simulate_iteration
from repro.utils.rng import SeedLike, as_generator


@dataclass
class SystemConfig:
    """Static configuration of one simulated FL system."""

    #: Model upload payload xi (Mbit).
    model_size_mbit: float = 40.0
    #: Bandwidth-history slot length h (seconds).
    slot_duration: float = 1.0
    #: History depth H (the state holds H+1 slots per device).
    history_slots: int = 8
    cost: CostModel = field(default_factory=CostModel)

    def validate(self) -> "SystemConfig":
        if self.model_size_mbit <= 0:
            raise ValueError("model_size_mbit must be positive")
        if self.slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        if self.history_slots < 0:
            raise ValueError("history_slots must be non-negative")
        return self


class FLSystem:
    """A fleet plus a wall clock: step with frequencies, observe history.

    This is the "federated learning system" box of the paper's Fig. 5:
    the DRL agent (or any baseline allocator) feeds it per-device
    CPU-cycle frequencies; the system advances the clock by the realized
    iteration time (Eq. 11) and exposes the bandwidth-history state.
    """

    def __init__(self, fleet: DeviceFleet, config: Optional[SystemConfig] = None):
        self.fleet = fleet
        self.config = (config or SystemConfig()).validate()
        self.clock = 0.0
        self.iteration = 0
        self.history: List[IterationResult] = []
        self._last_bw: Optional[np.ndarray] = None

    @property
    def n_devices(self) -> int:
        return self.fleet.n

    def reset(self, start_time: float = 0.0) -> None:
        """Rewind the system to a (possibly random) start time ``t^1``."""
        if start_time < 0:
            raise ValueError("start_time must be non-negative")
        self.clock = float(start_time)
        self.iteration = 0
        self.history = []
        self._last_bw = None

    def reset_random(self, rng: SeedLike = None) -> float:
        """Algorithm 1 line 6: randomly select a start time ``t^1``."""
        rng = as_generator(rng)
        horizon = min(trace.duration for trace in (d.trace for d in self.fleet))
        # Leave room for the history window before t^1.
        min_start = (self.config.history_slots + 1) * self.config.slot_duration
        start = float(rng.uniform(min_start, min_start + horizon))
        self.reset(start)
        return start

    def bandwidth_state(self) -> np.ndarray:
        """The DRL state ``s_k``: (N, H+1) matrix of past slot bandwidths.

        Row i is ``B_i^k = (B_i(|t/h|), ..., B_i(|t/h|-H))``, newest first,
        exactly the paper's state definition (Section IV.B.1).
        """
        n_slots = self.config.history_slots + 1
        state = np.empty((self.fleet.n, n_slots), dtype=np.float64)
        for i, device in enumerate(self.fleet):
            state[i] = device.trace.history(self.clock, n_slots)
        return state

    def current_bandwidths(self) -> np.ndarray:
        """Instantaneous per-device bandwidth at the clock (Mbit/s)."""
        return np.array(
            [d.trace.bandwidth_at(self.clock) for d in self.fleet], dtype=np.float64
        )

    def last_observed_bandwidths(self) -> Optional[np.ndarray]:
        """The Eq. (3) average bandwidths realized in the last iteration.

        This is the information the Heuristic baseline of Section V uses:
        "since the last iteration is just ended, the parameter server
        could know all the mobile devices' bandwidth information".
        """
        if self._last_bw is None:
            return None
        return self._last_bw.copy()

    def step(self, frequencies: np.ndarray, participants=None) -> IterationResult:
        """Run one iteration; advances the clock per Eq. (11).

        ``participants`` optionally restricts the round to a device subset
        (boolean mask) — see :func:`repro.sim.iteration.simulate_iteration`.
        """
        result = simulate_iteration(
            self.fleet,
            frequencies,
            self.clock,
            self.config.model_size_mbit,
            self.config.cost,
            participants=participants,
        )
        self.clock = result.end_time
        self.iteration += 1
        self.history.append(result)
        # Track the freshest Eq. (3) observation per device: devices that
        # sat out keep their previous estimate (the server saw nothing new).
        observed = result.avg_bandwidths
        if self._last_bw is None:
            self._last_bw = np.where(
                result.participants, observed, self.current_bandwidths()
            )
        else:
            self._last_bw = np.where(result.participants, observed, self._last_bw)
        return result

    def run(self, allocator, n_iterations: int) -> List[IterationResult]:
        """Drive ``n_iterations`` with an allocator (see repro.baselines)."""
        if n_iterations <= 0:
            raise ValueError("n_iterations must be positive")
        results = []
        allocator.reset(self)
        for _ in range(n_iterations):
            freqs = allocator.allocate(self)
            results.append(self.step(freqs))
        return results
