"""System cost (Eq. 9) and DRL reward (Eq. 13).

The cost of iteration k is ``T^k + lambda * sum_i E_i^k``; the reward is
its negation.  ``time_unit_s`` expresses the (unitless) time axis of the
paper's figures: the paper never states units for its cost/time numbers,
so presets calibrate this scale to land in the published ballpark while
the underlying simulation stays in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis import sanitizer as _sanitizer


@dataclass(frozen=True)
class CostModel:
    """Weighted time/energy cost of Eq. (9)."""

    #: Time/energy tradeoff weight lambda (>= 0).
    lam: float = 1.0
    #: Seconds per reported "time unit" (pure display/calibration scale).
    time_unit_s: float = 1.0

    def __post_init__(self) -> None:
        if self.lam < 0:
            raise ValueError("lambda must be non-negative")
        if self.time_unit_s <= 0:
            raise ValueError("time_unit_s must be positive")

    def time_units(self, seconds) -> np.ndarray:
        return np.asarray(seconds, dtype=np.float64) / self.time_unit_s

    def cost(self, iteration_time_s: float, total_energy: float) -> float:
        """``T^k + lambda sum_i E_i^k`` in display units."""
        value = float(self.time_units(iteration_time_s) + self.lam * total_energy)
        san = _sanitizer.ACTIVE
        if san is not None:
            san.check_cost(self, float(iteration_time_s), float(total_energy), value)
        return value

    def reward(self, iteration_time_s: float, total_energy: float) -> float:
        """Eq. (13): the negated cost."""
        return -self.cost(iteration_time_s, total_energy)


#: Interned (frozen, immutable) cost models keyed by their parameters so
#: the per-iteration functional form does not rebuild + revalidate a
#: dataclass on every call.  Bounded: distinct (lam, time_unit_s) pairs
#: are configuration, not data, so the cache stays tiny in practice.
_MODEL_CACHE: dict = {}
_MODEL_CACHE_MAX = 128


def iteration_cost(
    iteration_time_s: float,
    energies,
    lam: float,
    time_unit_s: float = 1.0,
    model: "CostModel" = None,
) -> float:
    """Functional form of :meth:`CostModel.cost` for array energy input.

    Pass ``model`` to skip the parameter lookup entirely (``lam`` /
    ``time_unit_s`` are ignored then).  Otherwise a validated
    :class:`CostModel` is built once per distinct ``(lam, time_unit_s)``
    pair and reused — invalid parameters still raise on first use.
    """
    if model is None:
        key = (float(lam), float(time_unit_s))
        model = _MODEL_CACHE.get(key)
        if model is None:
            model = CostModel(lam=key[0], time_unit_s=key[1])
            if len(_MODEL_CACHE) >= _MODEL_CACHE_MAX:
                _MODEL_CACHE.clear()
            _MODEL_CACHE[key] = model
    return model.cost(iteration_time_s, float(np.sum(energies)))


def reward_from_cost(cost: float) -> float:
    """Eq. (13) given a precomputed cost."""
    return -float(cost)
