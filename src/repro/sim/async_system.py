"""Asynchronous federated-learning simulator.

The paper adopts the synchronous model, citing Chen et al. [14] that it
is "more efficient than asynchronous models".  This module implements the
asynchronous alternative so that claim can be tested on the same
substrate: devices loop independently (download -> train tau passes ->
upload) and the server mixes each arriving update immediately with a
staleness-discounted weight

    omega <- (1 - gamma_s) * omega + gamma_s * omega_i,
    gamma_s = mixing / (1 + staleness),

where staleness counts how many server versions elapsed since the device
downloaded its base model — the standard async-FedAvg rule (Xie et al.).

The simulation is event-driven (a heap of device-completion events), so
wall-clock time, per-device energy and model-version bookkeeping are
exact under the same trace/energy models the synchronous simulator uses.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.devices.fleet import DeviceFleet
from repro.fl.training import FederatedTrainer
from repro.sim.system import SystemConfig


@dataclass
class AsyncUpdateRecord:
    """One server-side model update (a device's arrival)."""

    time: float
    device_id: int
    staleness: int
    mix_weight: float
    global_loss: float
    energy: float


@dataclass
class AsyncRunResult:
    """Outcome of an asynchronous run."""

    updates: List[AsyncUpdateRecord]
    wall_clock: float
    total_energy: float
    converged: bool

    @property
    def n_updates(self) -> int:
        return len(self.updates)

    @property
    def final_loss(self) -> float:
        return self.updates[-1].global_loss if self.updates else float("inf")

    def loss_curve(self) -> np.ndarray:
        """(time, loss) pairs, one per server update."""
        return np.array([[u.time, u.global_loss] for u in self.updates])


class AsyncFLSystem:
    """Event-driven asynchronous FL over the trace/energy substrate.

    Unlike :class:`repro.sim.system.FLSystem`, there is no global
    iteration: the run is driven by a real :class:`FederatedTrainer`
    (weights, clients, losses) and terminates when the Eq. (10) loss
    threshold is met or ``max_time``/``max_updates`` is exhausted.
    """

    def __init__(
        self,
        fleet: DeviceFleet,
        trainer: FederatedTrainer,
        config: Optional[SystemConfig] = None,
        mixing: float = 0.6,
    ):
        if len(trainer.clients) != fleet.n:
            raise ValueError(
                f"trainer has {len(trainer.clients)} clients but fleet has {fleet.n}"
            )
        if not 0.0 < mixing <= 1.0:
            raise ValueError("mixing must be in (0, 1]")
        self.fleet = fleet
        self.trainer = trainer
        self.config = (config or SystemConfig()).validate()
        self.mixing = float(mixing)

    def _device_round(self, i: int, start: float, frequency: float):
        """Simulate one device round; returns (finish_time, energy, weights)."""
        device = self.fleet[i]
        freq = device.clamp_frequency(frequency)
        t_cmp = device.compute_time(freq)
        upload_start = start + t_cmp
        t_com = device.upload_time(upload_start, self.config.model_size_mbit)
        energy = device.energy(freq, t_com)
        return start + t_cmp + t_com, energy, t_cmp, t_com

    def run(
        self,
        frequencies: np.ndarray,
        max_time: float = 1e5,
        max_updates: int = 10000,
        start_time: float = 0.0,
    ) -> AsyncRunResult:
        """Run asynchronously until Eq. (10), ``max_time`` or ``max_updates``.

        ``frequencies`` is the per-device CPU frequency (GHz) used for
        every round of that device (a static per-device assignment, the
        natural counterpart of the synchronous allocators).
        """
        frequencies = np.asarray(frequencies, dtype=np.float64)
        if frequencies.shape != (self.fleet.n,):
            raise ValueError(f"need {self.fleet.n} frequencies")
        server = self.trainer.server
        clients = self.trainer.clients
        sizes = self.trainer.dataset.shard_sizes

        version = 0
        # Per-device state: the model version and weights it trains from.
        base_weights = {i: server.global_weights() for i in range(self.fleet.n)}
        base_version = {i: 0 for i in range(self.fleet.n)}

        events = []  # (finish_time, device_id, energy)
        for i in range(self.fleet.n):
            finish, energy, _, _ = self._device_round(i, start_time, frequencies[i])
            heapq.heappush(events, (finish, i, energy))

        updates: List[AsyncUpdateRecord] = []
        total_energy = 0.0
        converged = False
        clock = start_time
        while events and len(updates) < max_updates:
            finish, i, energy = heapq.heappop(events)
            if finish - start_time > max_time:
                clock = start_time + max_time
                break
            clock = finish
            total_energy += energy

            # The device trained from its downloaded base weights.
            new_weights, _ = clients[i].local_update(base_weights[i])
            staleness = version - base_version[i]
            gamma = self.mixing / (1.0 + staleness)
            mixed = (1.0 - gamma) * server.global_weights() + gamma * new_weights
            server.model.set_weights(mixed)
            version += 1

            losses = [c.evaluate(mixed)[0] for c in clients]
            global_loss = server.global_loss(losses, sizes)
            updates.append(
                AsyncUpdateRecord(
                    time=clock - start_time,
                    device_id=i,
                    staleness=staleness,
                    mix_weight=gamma,
                    global_loss=global_loss,
                    energy=energy,
                )
            )
            if global_loss <= self.trainer.config.epsilon:
                converged = True
                break

            # Device immediately begins its next round from the new model.
            base_weights[i] = mixed.copy()
            base_version[i] = version
            next_finish, next_energy, _, _ = self._device_round(
                i, clock, frequencies[i]
            )
            heapq.heappush(events, (next_finish, i, next_energy))

        return AsyncRunResult(
            updates=updates,
            wall_clock=clock - start_time,
            total_energy=total_energy,
            converged=converged,
        )
