"""Continuous-time federated-learning system simulator.

Implements the timing/energy dynamics of Section III: per-device compute
time (Eq. 1), upload time under a time-varying trace (Eqs. 2-3),
iteration time as the fleet max (Eq. 5), energy (Eq. 6), wall-clock
chaining (Eq. 11) and the system cost / reward (Eqs. 9, 13).

Fault injection (``repro.faults``) and graceful degradation (round
deadlines, survivor-only aggregation, quorum retries) hook in here; both
are strictly opt-in.
"""

from repro.sim.cost import CostModel, iteration_cost, reward_from_cost
from repro.sim.iteration import (
    IterationResult,
    simulate_iteration,
    upload_times_reference,
)
from repro.sim.system import FLSystem, SystemConfig

__all__ = [
    "CostModel",
    "iteration_cost",
    "reward_from_cost",
    "IterationResult",
    "simulate_iteration",
    "upload_times_reference",
    "FLSystem",
    "SystemConfig",
]
