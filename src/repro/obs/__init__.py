"""repro.obs — metrics, tracing and run-manifest observability.

The paper judges the agent on the per-iteration cost
``T^k + lambda * sum_i E_i^k`` (Eqs. 1-6, 13); this subsystem makes the
*origin* of that cost visible at runtime without perturbing it:

* :mod:`repro.obs.metrics`   — counters, gauges, streaming histograms;
* :mod:`repro.obs.trace`     — nestable ``with tel.span(...)`` timing;
* :mod:`repro.obs.events`    — schema-versioned buffered JSONL sink;
* :mod:`repro.obs.telemetry` — the facade + process-global instance;
* :mod:`repro.obs.manifest`  — run provenance (config/seeds/git/versions);
* :mod:`repro.obs.console`   — the CLI's level-filtered logger;
* :mod:`repro.obs.summarize` — ``repro telemetry summarize`` rendering.

The default backend is :data:`NULL_TELEMETRY`: every hook is a no-op
and spans are a shared singleton, so with telemetry off the
instrumented code paths allocate nothing and the training trajectory
stays bit-identical.  ``repro.obs`` sits directly above ``repro.utils``
in the layering; any layer may import it.
"""

from repro.obs.console import ConsoleLogger, console
from repro.obs.events import (
    EVENTS_FILENAME,
    SCHEMA_VERSION,
    EventSink,
    JsonlEventSink,
    MemoryEventSink,
    NullEventSink,
    read_events,
)
from repro.obs.manifest import MANIFEST_FILENAME, RunManifest
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, StreamingHistogram
from repro.obs.summarize import (
    collector_table,
    fault_table,
    load_run,
    loop_table,
    manifest_summary,
    phase_table,
    round_table,
    serve_table,
    summarize_run,
    update_table,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    configure_telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from repro.obs.trace import NULL_SPAN, Span, Tracer

__all__ = [
    # console
    "ConsoleLogger",
    "console",
    # events
    "SCHEMA_VERSION",
    "EVENTS_FILENAME",
    "EventSink",
    "JsonlEventSink",
    "MemoryEventSink",
    "NullEventSink",
    "read_events",
    # metrics
    "Counter",
    "Gauge",
    "StreamingHistogram",
    "MetricsRegistry",
    # tracing
    "Span",
    "Tracer",
    "NULL_SPAN",
    # telemetry facade
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "configure_telemetry",
    "telemetry_session",
    # manifest
    "RunManifest",
    "MANIFEST_FILENAME",
    # summarize
    "load_run",
    "summarize_run",
    "manifest_summary",
    "phase_table",
    "round_table",
    "update_table",
    "collector_table",
    "fault_table",
    "serve_table",
    "loop_table",
]
