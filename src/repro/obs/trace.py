"""Span-based tracing with monotonic wall/CPU timers.

``with tracer.span("ppo.update"):`` times a phase with
``time.perf_counter`` (wall) and ``time.process_time`` (CPU), supports
nesting (children record their parent span and depth), emits one
``span`` event per exit and feeds a ``span.<name>`` streaming histogram
so percentiles are available in-process without re-reading the log.

The disabled path goes through :data:`NULL_SPAN`, a module-level
singleton whose ``__enter__``/``__exit__`` do nothing — entering a span
with telemetry off allocates nothing and takes two no-op calls.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.obs.events import EventSink
from repro.obs.metrics import MetricsRegistry


class _NullSpan:
    """Reusable no-op span for the disabled-telemetry path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The one shared no-op span instance (allocation-free disabled path).
NULL_SPAN = _NullSpan()


class Span:
    """One timed phase; emitted to the sink when the block exits."""

    __slots__ = ("name", "attrs", "_tracer", "_t_wall", "_t_cpu", "parent", "depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: Optional[Dict] = None) -> None:
        self.name = str(name)
        self.attrs = attrs
        self._tracer = tracer
        self._t_wall = 0.0
        self._t_cpu = 0.0
        self.parent: Optional[str] = None
        self.depth = 0

    def __enter__(self) -> "Span":
        stack = self._tracer._stack
        self.parent = stack[-1].name if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._t_wall = time.perf_counter()
        self._t_cpu = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall_s = time.perf_counter() - self._t_wall
        cpu_s = time.process_time() - self._t_cpu
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._record(self, wall_s, cpu_s, error=exc_type is not None)
        return False


class Tracer:
    """Creates spans and routes their timings to a sink and registry."""

    def __init__(self, sink: EventSink, registry: Optional[MetricsRegistry] = None) -> None:
        self.sink = sink
        self.registry = registry
        self._stack: list = []

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs or None)

    def _record(self, span: Span, wall_s: float, cpu_s: float, error: bool) -> None:
        fields: Dict = {
            "name": span.name,
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "depth": span.depth,
        }
        if span.parent is not None:
            fields["parent"] = span.parent
        if span.attrs:
            fields.update(span.attrs)
        if error:
            fields["error"] = True
        self.sink.emit("span", fields)
        if self.registry is not None:
            self.registry.histogram("span." + span.name).observe(wall_s)
