"""Level-filtered console logging for the CLI.

A tiny logger instead of bare ``print`` so output is testable
(``capsys`` sees it), machine-suppressible (``--quiet`` raises the
level to ``warning``) and consistent: ``info`` lines stay byte-identical
to what ``print`` produced, warnings/errors get a prefix, and errors go
to stderr.
"""

from __future__ import annotations

import sys
from typing import Optional

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


class ConsoleLogger:
    """Minimal leveled logger writing to stdout/stderr."""

    def __init__(self, level: str = "info") -> None:
        self._level = self._resolve(level)

    @staticmethod
    def _resolve(level: str) -> int:
        try:
            return LEVELS[str(level).lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; available: {sorted(LEVELS)}"
            )

    @property
    def level(self) -> str:
        for name, value in LEVELS.items():
            if value == self._level:
                return name
        return str(self._level)  # pragma: no cover - custom numeric level

    def set_level(self, level: str) -> None:
        self._level = self._resolve(level)

    def is_enabled(self, level: str) -> bool:
        return self._resolve(level) >= self._level

    def log(self, level: str, message: str, stream: Optional[object] = None) -> None:
        value = self._resolve(level)
        if value < self._level:
            return
        if stream is None:
            # Resolve at call time so pytest's capsys and stream
            # redirection both see the output.
            stream = sys.stderr if value >= LEVELS["error"] else sys.stdout
        stream.write(message + "\n")

    def always(self, message: str) -> None:
        """Unfiltered output: the command's *product*, not its chatter.

        Used for results the user explicitly asked for (e.g. a rendered
        telemetry summary), which ``--quiet`` must not swallow.
        """
        sys.stdout.write(message + "\n")

    def debug(self, message: str) -> None:
        self.log("debug", "debug: " + message)

    def info(self, message: str) -> None:
        self.log("info", message)

    def warning(self, message: str) -> None:
        self.log("warning", "warning: " + message)

    def error(self, message: str) -> None:
        self.log("error", "error: " + message)


#: The CLI's shared logger; ``repro --quiet`` raises it to ``warning``.
console = ConsoleLogger()
