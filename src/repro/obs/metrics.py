"""In-process metrics: counters, gauges and streaming histograms.

The histogram reuses the Welford/Chan streaming moments of
:mod:`repro.utils.stats` for mean/variance and keeps a bounded,
deterministically decimated sample for quantiles — no randomness, no
unbounded memory, O(1) amortized per observation.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from repro.utils.stats import RunningStat


class Counter:
    """Monotonic event counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, float]:
        return {"count": float(self.value)}


class Gauge:
    """Last-value-wins instantaneous measurement."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value}


class StreamingHistogram:
    """Streaming moments plus deterministic-reservoir quantiles.

    Exact ``n``/``mean``/``std``/``min``/``max`` come from the running
    moments; quantiles come from a capped sample that, once full, is
    halved by keeping every other element and doubling the keep stride —
    a deterministic decimation that preserves temporal coverage of the
    whole stream without any RNG draw.
    """

    __slots__ = ("_stat", "_samples", "_stride", "_i", "_min", "_max", "max_samples")

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples < 2:
            raise ValueError("max_samples must be at least 2")
        self.max_samples = int(max_samples)
        self._stat = RunningStat()
        self._samples: List[float] = []
        self._stride = 1
        self._i = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, x: float) -> None:
        x = float(x)
        self._stat.push(x)
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x
        if self._i % self._stride == 0:
            self._samples.append(x)
            if len(self._samples) >= self.max_samples:
                self._samples = self._samples[::2]
                self._stride *= 2
        self._i += 1

    @property
    def n(self) -> int:
        return self._stat.n

    @property
    def mean(self) -> float:
        return self._stat.mean

    @property
    def std(self) -> float:
        return self._stat.std

    @property
    def min(self) -> float:
        return self._min if self._stat.n else float("nan")

    @property
    def max(self) -> float:
        return self._max if self._stat.n else float("nan")

    def quantile(self, q) -> float:
        if not self._samples:
            return float("nan")
        return float(np.quantile(np.asarray(self._samples, dtype=np.float64), q))

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": float(self.n),
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
            "max": self.max,
        }


class MetricsRegistry:
    """Named metric instruments, created on first use.

    Get-or-create is serialized by an internal lock so two threads
    asking for the same name never race one instrument's counts away
    behind two instances.  The instruments themselves stay unlocked:
    their updates are single bytecode-level mutations whose worst
    concurrent outcome is an off-by-one sample, which metrics tolerate
    and the hot serve path should not pay a lock for.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, StreamingHistogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            try:
                return self._counters[name]
            except KeyError:
                c = self._counters[name] = Counter()
                return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            try:
                return self._gauges[name]
            except KeyError:
                g = self._gauges[name] = Gauge()
                return g

    def histogram(self, name: str, max_samples: int = 4096) -> StreamingHistogram:
        with self._lock:
            try:
                return self._histograms[name]
            except KeyError:
                h = self._histograms[name] = StreamingHistogram(max_samples)
                return h

    def snapshot(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Nested ``{kind: {name: summary}}`` view of every instrument."""
        with self._lock:
            return {
                "counters": {k: v.snapshot() for k, v in self._counters.items()},
                "gauges": {k: v.snapshot() for k, v in self._gauges.items()},
                "histograms": {
                    k: v.snapshot() for k, v in self._histograms.items()
                },
            }

    def histogram_names(self, prefix: Optional[str] = None) -> List[str]:
        with self._lock:
            names = sorted(self._histograms)
        if prefix is not None:
            names = [n for n in names if n.startswith(prefix)]
        return names
