"""Offline rendering of a telemetry directory.

``repro telemetry summarize <dir>`` loads ``events.jsonl`` +
``manifest.json`` and reconstructs, as plain-text tables
(:mod:`repro.utils.tables`):

* per-phase timing percentiles from the span events (plus DRL updates);
* the per-round cost decomposition — per-device max/mean
  ``t_cmp``/``t_com``/energy and straggler identity — from the round
  events;
* DRL update diagnostics, collector throughput and fault counts.
"""

from __future__ import annotations

import os
from collections import Counter as TallyCounter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.events import EVENTS_FILENAME, read_events
from repro.obs.manifest import MANIFEST_FILENAME, RunManifest
from repro.utils.tables import format_table


def load_run(directory: str) -> Tuple[List[Dict], Optional[RunManifest]]:
    """Load a telemetry directory's event log and manifest."""
    events_path = os.path.join(directory, EVENTS_FILENAME)
    if not os.path.exists(events_path):
        raise FileNotFoundError(f"no {EVENTS_FILENAME} in {directory!r}")
    events = read_events(events_path)
    manifest_path = os.path.join(directory, MANIFEST_FILENAME)
    manifest = RunManifest.load(manifest_path) if os.path.exists(manifest_path) else None
    return events, manifest


def _of_type(events: List[Dict], type_: str) -> List[Dict]:
    return [e for e in events if e.get("type") == type_]


def manifest_summary(manifest: Optional[RunManifest]) -> Optional[str]:
    if manifest is None:
        return None
    lines = ["== Run manifest =="]
    lines.append(f"command : {manifest.command or '-'}")
    lines.append(f"seed    : {manifest.seed if manifest.seed is not None else '-'}")
    lines.append(f"python  : {manifest.python}  ({manifest.platform})")
    sha = manifest.git_sha or "-"
    lines.append(f"git     : {sha[:12] if manifest.git_sha else '-'}")
    pkgs = ", ".join(f"{k} {v}" for k, v in sorted(manifest.packages.items()))
    lines.append(f"packages: {pkgs or '-'}")
    return "\n".join(lines)


def phase_table(events: List[Dict]) -> Optional[str]:
    """Timing percentiles per phase (spans + timed DRL updates)."""
    samples: Dict[str, List[float]] = {}
    for e in _of_type(events, "span"):
        samples.setdefault(e["name"], []).append(float(e["wall_s"]))
    for e in _of_type(events, "update"):
        if "wall_s" in e and not e.get("skipped", False):
            name = "update." + str(e.get("algorithm", "?"))
            samples.setdefault(name, []).append(float(e["wall_s"]))
    if not samples:
        return None
    rows = []
    for name in sorted(samples):
        arr = np.asarray(samples[name], dtype=np.float64)
        rows.append(
            [
                name,
                arr.size,
                float(arr.sum()),
                float(arr.mean()),
                float(np.quantile(arr, 0.5)),
                float(np.quantile(arr, 0.9)),
                float(arr.max()),
            ]
        )
    return format_table(
        ["phase", "count", "total s", "mean s", "p50 s", "p90 s", "max s"],
        rows,
        title="== Phase timing (wall-clock) ==",
    )


def round_table(events: List[Dict]) -> Optional[str]:
    """Per-device decomposition of the Eq. (1)-(6) round cost terms."""
    rounds = _of_type(events, "round")
    rounds = [r for r in rounds if "t_cmp_s" in r]
    if not rounds:
        return None
    # A run has one fleet size; tolerate mixed logs by keeping the
    # majority size (e.g. a directory reused across presets).
    sizes = TallyCounter(len(r["t_cmp_s"]) for r in rounds)
    n_devices = sizes.most_common(1)[0][0]
    rounds = [r for r in rounds if len(r["t_cmp_s"]) == n_devices]
    t_cmp = np.asarray([r["t_cmp_s"] for r in rounds], dtype=np.float64)
    t_com = np.asarray([r["t_com_s"] for r in rounds], dtype=np.float64)
    energy = np.asarray([r["energy_j"] for r in rounds], dtype=np.float64)
    freq = np.asarray([r["freq_ghz"] for r in rounds], dtype=np.float64)
    stragglers = TallyCounter(int(r["straggler"]) for r in rounds)
    rows = []
    for i in range(n_devices):
        rows.append(
            [
                i,
                float(freq[:, i].mean()),
                float(t_cmp[:, i].mean()),
                float(t_cmp[:, i].max()),
                float(t_com[:, i].mean()),
                float(t_com[:, i].max()),
                float(energy[:, i].mean()),
                float(energy[:, i].max()),
                stragglers.get(i, 0),
            ]
        )
    table = format_table(
        [
            "device",
            "mean dGHz",
            "mean t_cmp",
            "max t_cmp",
            "mean t_com",
            "max t_com",
            "mean E",
            "max E",
            "straggler",
        ],
        rows,
        title=f"== Per-device round cost decomposition ({len(rounds)} rounds) ==",
    )
    costs = np.asarray([r["cost"] for r in rounds], dtype=np.float64)
    t_iter = np.asarray([r["t_iter_s"] for r in rounds], dtype=np.float64)
    note = (
        f"rounds: {len(rounds)}  mean cost {costs.mean():.4g}  "
        f"mean T^k {t_iter.mean():.4g}s  "
        f"mean round energy {energy.sum(axis=1).mean():.4g}J"
    )
    return table + "\n" + note


def update_table(events: List[Dict]) -> Optional[str]:
    updates = [e for e in _of_type(events, "update") if not e.get("skipped", False)]
    if not updates:
        return None
    by_algo: Dict[str, List[Dict]] = {}
    for e in updates:
        by_algo.setdefault(str(e.get("algorithm", "?")), []).append(e)
    rows = []
    for algo in sorted(by_algo):
        batch = by_algo[algo]

        def mean(key: str) -> float:
            return float(np.mean([float(e.get(key, 0.0)) for e in batch]))

        rows.append(
            [
                algo,
                len(batch),
                mean("policy_loss"),
                mean("value_loss"),
                mean("approx_kl"),
                mean("clip_fraction"),
                mean("grad_norm_actor"),
                mean("grad_norm_critic"),
            ]
        )
    skipped = sum(1 for e in _of_type(events, "update") if e.get("skipped", False))
    table = format_table(
        [
            "algorithm",
            "updates",
            "policy loss",
            "value loss",
            "approx KL",
            "clip frac",
            "|g| actor",
            "|g| critic",
        ],
        rows,
        title="== DRL update diagnostics (means) ==",
    )
    if skipped:
        table += f"\nskipped (non-finite, rolled back): {skipped}"
    return table


def collector_table(events: List[Dict]) -> Optional[str]:
    batches = _of_type(events, "collector")
    if not batches:
        return None
    rates = np.asarray(
        [float(e.get("steps_per_sec", 0.0)) for e in batches], dtype=np.float64
    )
    util = np.asarray(
        [float(e.get("worker_utilization", 1.0)) for e in batches], dtype=np.float64
    )
    steps = int(sum(int(e.get("steps", 0)) for e in batches))
    rows = [
        [
            len(batches),
            steps,
            float(rates.mean()),
            float(rates.max()),
            float(util.mean()),
        ]
    ]
    return format_table(
        ["batches", "env steps", "mean steps/s", "max steps/s", "mean util"],
        rows,
        title="== Rollout collector throughput ==",
    )


def fault_table(events: List[Dict]) -> Optional[str]:
    tallies: TallyCounter = TallyCounter()
    for e in _of_type(events, "fault"):
        tallies[str(e.get("kind", "?"))] += 1
    for _ in _of_type(events, "worker_crash"):
        tallies["worker_crash"] += 1
    if not tallies:
        return None
    rows = [[kind, count] for kind, count in sorted(tallies.items())]
    return format_table(["fault kind", "events"], rows, title="== Fault events ==")


def serve_table(events: List[Dict]) -> Optional[str]:
    """Serving-engine behaviour: micro-batch sizes, latency, shedding."""
    batches = _of_type(events, "serve_batch")
    sheds = _of_type(events, "serve_shed")
    if not batches and not sheds:
        return None
    if not batches:
        return f"== Serving ==\nshed requests (queue full): {len(sheds)}"
    sizes = np.asarray(
        [float(e.get("batch_size", 0.0)) for e in batches], dtype=np.float64
    )
    infer = np.asarray(
        [float(e.get("infer_ms", 0.0)) for e in batches], dtype=np.float64
    )
    versions = TallyCounter(
        str(e.get("policy_version", "?")) for e in batches
    )
    rows = [
        [
            len(batches),
            int(sizes.sum()),
            float(sizes.mean()),
            int(sizes.max()),
            float(np.quantile(infer, 0.5)),
            float(np.quantile(infer, 0.9)),
            float(infer.max()),
            len(sheds),
        ]
    ]
    table = format_table(
        [
            "batches",
            "requests",
            "mean batch",
            "max batch",
            "p50 infer ms",
            "p90 infer ms",
            "max infer ms",
            "shed",
        ],
        rows,
        title="== Serving micro-batches ==",
    )
    served = ", ".join(f"{v} x{n}" for v, n in sorted(versions.items()))
    return table + f"\npolicy versions served: {served}"


def loop_table(events: List[Dict]) -> Optional[str]:
    """Policy-lifecycle transitions recorded by the closed loop."""
    loops = _of_type(events, "loop")
    if not loops:
        return None
    tallies = TallyCounter(str(e.get("kind", "?")) for e in loops)
    rows = [[kind, count] for kind, count in sorted(tallies.items())]
    table = format_table(
        ["transition", "events"], rows, title="== Policy lifecycle (loop) =="
    )
    notes = []
    for e in loops:
        kind = e.get("kind")
        if kind == "drift":
            notes.append(
                f"drift on {e.get('stream', '?')}: statistic "
                f"{e.get('statistic', '?')} (threshold {e.get('threshold', '?')})"
            )
        elif kind == "publish":
            notes.append(f"published {e.get('version', '?')}")
        elif kind == "rollback":
            notes.append(
                f"rolled back to {e.get('restored', '?')} "
                f"(now serving {e.get('serving', '?')})"
            )
    if notes:
        table += "\n" + "\n".join(notes)
    return table


def summarize_run(directory: str) -> str:
    """The full plain-text report for one telemetry directory."""
    events, manifest = load_run(directory)
    sections = [
        manifest_summary(manifest),
        phase_table(events),
        round_table(events),
        update_table(events),
        collector_table(events),
        fault_table(events),
        serve_table(events),
        loop_table(events),
    ]
    rendered = [s for s in sections if s]
    if not rendered:
        return f"no telemetry events found in {directory!r}"
    return "\n\n".join(rendered)
