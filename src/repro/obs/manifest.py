"""Run manifests: what exactly produced a telemetry directory.

A :class:`RunManifest` pins down everything needed to re-run or audit a
training/evaluation run: the command and argv, the resolved
configuration, seeds, the git commit of the working tree, interpreter
and platform identity, and the versions of the packages the simulator
depends on.  It is written once, at run start, next to the event log.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs.events import SCHEMA_VERSION

#: Canonical manifest filename inside a telemetry directory.
MANIFEST_FILENAME = "manifest.json"


def _git_sha() -> Optional[str]:
    """The HEAD commit of the current working tree, if discoverable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _package_versions() -> Dict[str, str]:
    versions: Dict[str, str] = {}
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except (ImportError, AttributeError):  # pragma: no cover - hard dependency
        pass
    try:
        import repro

        versions["repro"] = repro.__version__
    except (ImportError, AttributeError):
        pass
    return versions


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of config objects to JSON-safe values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "tolist"):
        return value.tolist()
    return repr(value)


@dataclass
class RunManifest:
    """Immutable record of a run's provenance."""

    schema: int = SCHEMA_VERSION
    command: str = ""
    argv: List[str] = field(default_factory=list)
    created_unix: float = 0.0
    python: str = ""
    platform: str = ""
    git_sha: Optional[str] = None
    packages: Dict[str, str] = field(default_factory=dict)
    seed: Optional[int] = None
    config: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        command: str = "",
        seed: Optional[int] = None,
        config: Any = None,
        extra: Optional[Dict[str, Any]] = None,
        clock: Callable[[], float] = time.time,
    ) -> "RunManifest":
        """Gather the environment-dependent fields at call time.

        ``clock`` is the wall-clock source for ``created_unix``; inject a
        frozen callable to make manifests deterministic under test.
        """
        return cls(
            command=str(command),
            argv=list(sys.argv),
            created_unix=float(clock()),
            python=sys.version.split()[0],
            platform=platform.platform(),
            git_sha=_git_sha(),
            packages=_package_versions(),
            seed=None if seed is None else int(seed),
            config=_jsonable(config) if config is not None else {},
            extra=_jsonable(extra) if extra else {},
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def save(self, path: str) -> None:
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})
