"""Schema-versioned telemetry event records and their sinks.

Every record is a flat JSON object carrying three bookkeeping fields the
sink stamps on emission:

* ``schema`` — the event-schema version (:data:`SCHEMA_VERSION`);
* ``seq``    — a monotonically increasing sequence number, unique per
  run directory and continued across process restarts;
* ``type``   — the event kind (``round``, ``span``, ``update``, ...).

The sequence number is the checkpoint/resume watermark: the trainer
stores the sink's ``seq`` alongside its own state, and on resume
:meth:`EventSink.rewind` drops every record emitted after the
checkpoint, so a re-run of the tail of training neither duplicates nor
loses round records.
"""

from __future__ import annotations

import io
import json
import os
import threading
from typing import Dict, List, Optional

#: Version stamped into every emitted record; bump on breaking changes.
SCHEMA_VERSION = 1

#: Canonical event-log filename inside a telemetry directory.
EVENTS_FILENAME = "events.jsonl"


class EventSink:
    """Interface of a telemetry event destination."""

    #: Last assigned sequence number (0 before any emission).
    seq: int = 0

    def emit(self, type_: str, fields: Dict) -> int:
        """Stamp and record one event; returns its sequence number."""
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered records to durable storage (no-op by default)."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""
        self.flush()

    def rewind(self, watermark: int) -> None:
        """Drop every record with ``seq > watermark`` (resume support)."""
        raise NotImplementedError

    def _stamp(self, type_: str, fields: Dict) -> Dict:
        self.seq += 1
        record = {"schema": SCHEMA_VERSION, "seq": self.seq, "type": str(type_)}
        record.update(fields)
        return record


class NullEventSink(EventSink):
    """Discards everything; the disabled-telemetry backend."""

    def emit(self, type_: str, fields: Dict) -> int:
        return 0

    def rewind(self, watermark: int) -> None:
        pass


class MemoryEventSink(EventSink):
    """Keeps records in a list — unit tests and in-process inspection."""

    def __init__(self) -> None:
        self.records: List[Dict] = []

    def emit(self, type_: str, fields: Dict) -> int:
        record = self._stamp(type_, fields)
        self.records.append(record)
        return record["seq"]

    def rewind(self, watermark: int) -> None:
        self.records = [r for r in self.records if r["seq"] <= watermark]
        self.seq = min(self.seq, int(watermark))

    def of_type(self, type_: str) -> List[Dict]:
        return [r for r in self.records if r["type"] == type_]


class JsonlEventSink(EventSink):
    """Buffered append-only JSONL file sink.

    Records are buffered and written in batches of ``buffer_records`` to
    keep the per-event cost at one ``json.dumps``.  Opening an existing
    log continues its sequence numbering, so a resumed run appends to
    the same file (after the trainer rewinds past-checkpoint records).

    Emission and flushing are serialized by an internal lock: the
    serving layer (:mod:`repro.serve`) emits from its engine worker and
    request-handler threads concurrently.
    """

    def __init__(self, path: str, buffer_records: int = 128) -> None:
        if buffer_records <= 0:
            raise ValueError("buffer_records must be positive")
        self.path = str(path)
        self.buffer_records = int(buffer_records)
        self._buffer: List[str] = []
        self._closed = False
        self._lock = threading.Lock()
        self.seq = 0
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if os.path.exists(self.path):
            for record in iter_events(self.path):
                self.seq = max(self.seq, int(record.get("seq", 0)))

    def emit(self, type_: str, fields: Dict) -> int:
        with self._lock:
            if self._closed:
                raise RuntimeError("emit() on a closed JsonlEventSink")
            record = self._stamp(type_, fields)
            self._buffer.append(json.dumps(record, separators=(",", ":")))
            if len(self._buffer) >= self.buffer_records:
                self._flush_locked()
            return record["seq"]

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        with io.open(self.path, "a", encoding="utf-8") as fh:
            fh.write("\n".join(self._buffer) + "\n")
        self._buffer = []

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._flush_locked()
                self._closed = True

    def rewind(self, watermark: int) -> None:
        """Truncate the log to records with ``seq <= watermark``.

        Called on resume before any new event is emitted, so everything
        the crashed run wrote past its last checkpoint is discarded and
        the re-run's records take their place exactly once.  The whole
        flush + rewrite + watermark update runs under the same lock as
        ``emit``: a concurrently emitting thread must observe either the
        pre-rewind log or the truncated one, never a half-rewritten file
        or a sequence number behind the watermark.
        """
        watermark = int(watermark)
        with self._lock:
            self._flush_locked()
            if os.path.exists(self.path):
                kept = [
                    r
                    for r in iter_events(self.path)
                    if r.get("seq", 0) <= watermark
                ]
                with io.open(self.path, "w", encoding="utf-8") as fh:
                    for record in kept:
                        fh.write(
                            json.dumps(record, separators=(",", ":")) + "\n"
                        )
            self.seq = watermark


def iter_events(path: str):
    """Yield records from a JSONL event log, skipping torn tail lines.

    A crash can leave a partially written final line; it is ignored
    rather than poisoning the whole log.
    """
    with io.open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def read_events(path: str, type_: Optional[str] = None) -> List[Dict]:
    """Load an event log (optionally filtered by event type)."""
    events = list(iter_events(path))
    if type_ is not None:
        events = [e for e in events if e.get("type") == type_]
    return events
