"""The telemetry facade and its process-wide current instance.

Instrumented code calls :func:`get_telemetry` and, when
``tel.enabled`` is true, reports through the high-level hooks
(``on_round``, ``on_update``, ``on_collector_batch``, ``on_fault``,
``on_worker_crash``, ``on_worker_restart``, ``on_checkpoint_corrupt``,
``on_drain``) or times phases with ``tel.span(...)``.  The
default instance is :data:`NULL_TELEMETRY`, whose hooks are no-ops and
whose spans are a shared singleton — with telemetry disabled the
instrumentation costs one attribute check and allocates nothing, so the
default training trajectory is bit-identical to an uninstrumented
build.

Enabling telemetry never perturbs the simulation either: hooks only
*read* results and never touch an RNG stream, so an enabled run still
produces the same ``TrainingHistory`` — it just also leaves an event
log behind.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Optional

import numpy as np

from repro.obs.events import (
    EVENTS_FILENAME,
    EventSink,
    JsonlEventSink,
    MemoryEventSink,
    NullEventSink,
)
from repro.obs.manifest import MANIFEST_FILENAME, RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_SPAN, Tracer


def _device_list(values: np.ndarray) -> list:
    """Compact per-device float list for JSON (6 significant digits)."""
    return [float(f"{float(v):.6g}") for v in np.asarray(values).ravel()]


class Telemetry:
    """Live telemetry: a sink, a metrics registry and a tracer."""

    enabled: bool = True

    def __init__(
        self,
        sink: Optional[EventSink] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.sink = sink if sink is not None else MemoryEventSink()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(self.sink, self.registry)

    # -- generic ------------------------------------------------------------
    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def event(self, type_: str, **fields) -> int:
        return self.sink.emit(type_, fields)

    def flush(self) -> None:
        self.sink.flush()

    def close(self) -> None:
        self.sink.close()

    # -- checkpoint/resume --------------------------------------------------
    def state_dict(self) -> Dict[str, int]:
        """The resume watermark; flushes so the log is durable first."""
        self.sink.flush()
        return {"seq": int(self.sink.seq)}

    def rewind(self, watermark: int) -> None:
        """Drop events emitted after ``watermark`` (crash recovery)."""
        self.sink.rewind(int(watermark))

    # -- domain hooks -------------------------------------------------------
    def on_round(self, result, iteration: int, clock: float) -> None:
        """One accepted FL round: the paper's per-device cost decomposition.

        ``result`` is a :class:`repro.sim.iteration.IterationResult`;
        the event carries per-device ``t_cmp``/``t_com``/energy, the
        chosen frequencies delta and the straggler (round-gating device).
        """
        straggler = int(np.argmax(result.device_times))
        self.sink.emit(
            "round",
            {
                "iteration": int(iteration),
                "clock": float(clock),
                "cost": float(result.cost),
                "reward": float(result.reward),
                "t_iter_s": float(result.iteration_time),
                "straggler": straggler,
                "n_participants": int(result.n_participants),
                "failed_attempts": int(result.failed_attempts),
                "freq_ghz": _device_list(result.frequencies),
                "t_cmp_s": _device_list(result.compute_times),
                "t_com_s": _device_list(result.upload_times),
                "energy_j": _device_list(result.energies),
                "idle_s": _device_list(result.idle_times),
            },
        )
        reg = self.registry
        reg.counter("rounds").inc()
        reg.histogram("round.t_iter_s").observe(result.iteration_time)
        reg.histogram("round.cost").observe(result.cost)
        reg.histogram("round.energy_j").observe(float(np.sum(result.energies)))

    def on_update(
        self, stats, algorithm: str, wall_s: Optional[float] = None, **fields
    ) -> None:
        """One DRL update batch (:class:`repro.rl.ppo.UpdateStats`)."""
        record: Dict[str, Any] = {
            "algorithm": str(algorithm),
            "policy_loss": float(stats.policy_loss),
            "value_loss": float(stats.value_loss),
            "entropy": float(stats.entropy),
            "approx_kl": float(stats.approx_kl),
            "clip_fraction": float(stats.clip_fraction),
            "grad_norm_actor": float(stats.grad_norm_actor),
            "grad_norm_critic": float(stats.grad_norm_critic),
            "n_minibatches": int(stats.n_minibatches),
            "skipped": bool(getattr(stats, "skipped", False)),
        }
        if wall_s is not None:
            record["wall_s"] = float(wall_s)
        record.update(fields)
        self.sink.emit("update", record)
        reg = self.registry
        reg.counter("updates").inc()
        if record["skipped"]:
            reg.counter("updates.skipped").inc()
        elif wall_s is not None:
            reg.histogram("span.update").observe(wall_s)

    def on_collector_batch(self, **fields) -> None:
        """One vectorized episode batch's throughput numbers."""
        self.sink.emit("collector", fields)
        if "steps_per_sec" in fields:
            self.registry.histogram("collector.steps_per_sec").observe(
                fields["steps_per_sec"]
            )

    def on_fault(self, kind: str, **fields) -> None:
        """A fault-injection occurrence (dropout/straggler/retry/...)."""
        fields["kind"] = str(kind)
        self.sink.emit("fault", fields)
        self.registry.counter("faults." + kind).inc()

    def on_worker_crash(self, **fields) -> None:
        """A vec-env subprocess worker died or stopped responding."""
        self.sink.emit("worker_crash", fields)
        self.registry.counter("worker_crashes").inc()

    def on_worker_restart(self, **fields) -> None:
        """The supervisor respawned and resynced a crashed/hung worker."""
        self.sink.emit("worker_restart", fields)
        self.registry.counter("worker_restarts").inc()

    def on_checkpoint_corrupt(self, **fields) -> None:
        """A checkpoint generation failed verification and was skipped."""
        self.sink.emit("checkpoint_corrupt", fields)
        self.registry.counter("checkpoint_corruptions").inc()

    def on_drain(self, **fields) -> None:
        """A termination signal triggered a graceful drain."""
        self.sink.emit("drain", fields)
        self.registry.counter("drains").inc()

    def on_eval_method(self, name: str, **fields) -> None:
        """One allocator's aggregate evaluation metrics."""
        fields["method"] = str(name)
        self.sink.emit("eval_method", fields)

    def on_serve_batch(self, **fields) -> None:
        """One coalesced inference micro-batch in the serving engine."""
        self.sink.emit("serve_batch", fields)
        self.registry.counter("serve_batches").inc()
        if "batch_size" in fields:
            self.registry.histogram("serve.batch_size").observe(
                float(fields["batch_size"])
            )

    def on_loop(self, kind: str, **fields) -> None:
        """One policy-lifecycle transition (drift, retrain, canary, ...)."""
        fields["kind"] = str(kind)
        self.sink.emit("loop", fields)
        self.registry.counter(f"loop.{kind}").inc()


class NullTelemetry(Telemetry):
    """The disabled backend: every hook is a pass, spans are shared."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(sink=NullEventSink())

    def span(self, name: str, **attrs):
        return NULL_SPAN

    def event(self, type_: str, **fields) -> int:
        return 0

    def state_dict(self) -> Dict[str, int]:
        return {"seq": 0}

    def rewind(self, watermark: int) -> None:
        pass

    def on_round(self, result, iteration: int, clock: float) -> None:
        pass

    def on_update(self, stats, algorithm, wall_s=None, **fields) -> None:
        pass

    def on_collector_batch(self, **fields) -> None:
        pass

    def on_fault(self, kind: str, **fields) -> None:
        pass

    def on_worker_crash(self, **fields) -> None:
        pass

    def on_worker_restart(self, **fields) -> None:
        pass

    def on_checkpoint_corrupt(self, **fields) -> None:
        pass

    def on_drain(self, **fields) -> None:
        pass

    def on_eval_method(self, name: str, **fields) -> None:
        pass

    def on_serve_batch(self, **fields) -> None:
        pass

    def on_loop(self, kind: str, **fields) -> None:
        pass


#: The process-wide disabled backend (shared, stateless).
NULL_TELEMETRY = NullTelemetry()

_CURRENT: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """The process-wide current telemetry (``NULL_TELEMETRY`` when off)."""
    return _CURRENT


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install ``telemetry`` globally (``None`` = disable); returns it."""
    global _CURRENT
    _CURRENT = telemetry if telemetry is not None else NULL_TELEMETRY
    return _CURRENT


def configure_telemetry(
    directory: str,
    command: str = "",
    seed: Optional[int] = None,
    config: Any = None,
    extra: Optional[Dict[str, Any]] = None,
    write_manifest: bool = True,
    buffer_records: int = 128,
) -> Telemetry:
    """Create a JSONL-backed telemetry in ``directory`` and install it.

    Writes ``manifest.json`` (unless the directory already has one from
    the run being resumed) and points the event sink at
    ``events.jsonl``, continuing an existing log's sequence numbers.
    """
    os.makedirs(directory, exist_ok=True)
    sink = JsonlEventSink(
        os.path.join(directory, EVENTS_FILENAME), buffer_records=buffer_records
    )
    telemetry = Telemetry(sink=sink)
    manifest_path = os.path.join(directory, MANIFEST_FILENAME)
    if write_manifest and not os.path.exists(manifest_path):
        RunManifest.collect(
            command=command, seed=seed, config=config, extra=extra
        ).save(manifest_path)
    return set_telemetry(telemetry)


@contextmanager
def telemetry_session(directory: str, **kwargs):
    """``configure_telemetry`` scoped to a ``with`` block."""
    telemetry = configure_telemetry(directory, **kwargs)
    try:
        yield telemetry
    finally:
        telemetry.close()
        set_telemetry(NULL_TELEMETRY)
