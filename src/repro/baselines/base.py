"""Allocator interface: anything that maps system state to frequencies."""

from __future__ import annotations

import numpy as np


class Allocator:
    """Base class for CPU-cycle-frequency allocators.

    ``reset(system)`` is called once before a run; ``allocate(system)`` is
    called at the *start* of every iteration and must return a frequency
    vector (GHz) of length ``system.n_devices``.  Implementations must
    only read information causally available at the iteration start
    (clairvoyant allocators say so explicitly).
    """

    name = "allocator"

    def reset(self, system) -> None:
        """Prepare for a fresh run (default: stateless)."""

    def allocate(self, system) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}()"
