"""Static baseline (after Tran et al. [4], as described in Section V).

"The authors assume that the network is static, and determine the optimal
CPU-cycle frequency at the beginning of federated learning.  ...  we
randomly select some bandwidth data from the dataset, and determine the
CPU-cycle frequency for each mobile device according to the average value
of these bandwidth data.  Then, in each training iteration, the mobile
devices will use the consistent CPU-cycle frequency directly."

Estimator variants (``scope``):

* ``"recent"`` (default) — probe each device's bandwidth in a short
  window at the start of federated learning ("determine the optimal
  CPU-cycle frequency at the beginning of federated learning").  Under
  non-stationary networks this setup-time estimate goes stale, which is
  precisely the failure mode the paper attributes to the static scheme.
* ``"per-device"`` — sample random slots from each device's whole trace
  (a stronger, dataset-wide average).
* ``"global"`` — pool samples across all devices into one dataset-wide
  average (note that with a common estimate for every device the deadline
  subproblem's optimizer becomes independent of the estimate, so this
  variant degenerates to a fixed hedge).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import Allocator
from repro.baselines.solver import optimal_frequencies_for_estimate
from repro.utils.rng import SeedLike, as_generator


class StaticAllocator(Allocator):
    """Solves once at run start from sampled average bandwidths."""

    name = "static"

    def __init__(
        self,
        n_bandwidth_samples: int = 8,
        rng: SeedLike = None,
        scope: str = "recent",
        probe_window_s: float = 60.0,
    ):
        if n_bandwidth_samples <= 0:
            raise ValueError("n_bandwidth_samples must be positive")
        if scope not in ("recent", "global", "per-device"):
            raise ValueError("scope must be 'recent', 'global' or 'per-device'")
        if probe_window_s <= 0:
            raise ValueError("probe_window_s must be positive")
        self.n_bandwidth_samples = int(n_bandwidth_samples)
        self.scope = scope
        self.probe_window_s = float(probe_window_s)
        self._rng = as_generator(rng)
        self._frequencies: Optional[np.ndarray] = None

    def _estimate_bandwidths(self, system) -> np.ndarray:
        rng = self._rng
        if self.scope == "global":
            # One dataset-wide average applied to every device.
            pooled = np.concatenate(
                [device.trace.values for device in system.fleet]
            )
            idx = rng.integers(0, pooled.size, size=self.n_bandwidth_samples)
            return np.full(system.n_devices, float(pooled[idx].mean()))
        est = np.empty(system.n_devices, dtype=np.float64)
        if self.scope == "recent":
            # Probe the window just before the run starts (setup-time
            # measurement); sample slots within it.
            window_slots = max(
                1, int(round(self.probe_window_s / system.config.slot_duration))
            )
            for i, device in enumerate(system.fleet):
                window = device.trace.history(system.clock, window_slots)
                idx = rng.integers(0, window.size, size=self.n_bandwidth_samples)
                est[i] = float(window[idx].mean())
            return est
        for i, device in enumerate(system.fleet):
            idx = rng.integers(
                0, device.trace.n_slots, size=self.n_bandwidth_samples
            )
            est[i] = float(device.trace.values[idx].mean())
        return est

    def reset(self, system) -> None:
        est_bw = self._estimate_bandwidths(system)
        est_upload = system.config.model_size_mbit / np.maximum(est_bw, 1e-9)
        solution = optimal_frequencies_for_estimate(
            system.fleet, est_upload, system.config.cost
        )
        self._frequencies = solution.frequencies

    def allocate(self, system) -> np.ndarray:
        if self._frequencies is None:
            # Tolerate callers that skip reset().
            self.reset(system)
        return self._frequencies.copy()
