"""Heuristic baseline (after Wang et al. [3], as described in Section V).

"At the beginning of each training iteration ..., since the last
iteration is just ended, the parameter server could know all the mobile
devices' bandwidth information.  Hence, the parameter server can
determine the mobile device's CPU-cycle frequency in the current
iteration with the bandwidth in the last iteration."
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Allocator
from repro.baselines.solver import optimal_frequencies_for_estimate


class HeuristicAllocator(Allocator):
    """Re-optimizes each iteration using last iteration's bandwidth.

    The first iteration has no history, so it falls back to the current
    instantaneous slot bandwidth (the best causally available estimate).
    """

    name = "heuristic"

    def allocate(self, system) -> np.ndarray:
        est_bw = system.last_observed_bandwidths()
        if est_bw is None:
            est_bw = system.current_bandwidths()
        est_upload = system.config.model_size_mbit / np.maximum(est_bw, 1e-9)
        solution = optimal_frequencies_for_estimate(
            system.fleet, est_upload, system.config.cost
        )
        return solution.frequencies
