"""The per-iteration frequency-optimization subproblem.

Given *estimated* per-device upload times ``that_i`` (from some bandwidth
estimate), the best response is: pick a common deadline ``T`` and run
each device at the slowest frequency that still meets it,

    delta_i(T) = a_i / (T - that_i),   a_i = tau c_i D_i,

feasible for ``T >= T_min = max_i (a_i / delta_max_i + that_i)``.  The
estimated cost

    phi(T) = T / u + lam * sum_i [ beta_i delta_i(T)^2 + e_i that_i ]

(``u`` = display time unit, ``beta_i = alpha_i c_i D_i``) has derivative
``1/u - 2 lam sum_i beta_i a_i^2 / (T - that_i)^3``, strictly increasing
in T, so phi is convex with a unique minimizer found by bisection on
``phi'``.  This solver is the common core of the Heuristic, Static and
Oracle baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices.fleet import DeviceFleet
from repro.sim.cost import CostModel


@dataclass(frozen=True)
class DeadlineSolution:
    """Result of the deadline optimization."""

    frequencies: np.ndarray
    deadline: float
    estimated_cost: float


def _phi_prime(
    T: float,
    a: np.ndarray,
    beta: np.ndarray,
    that: np.ndarray,
    lam: float,
    time_unit_s: float,
) -> float:
    gap = np.maximum(T - that, 1e-12)
    return 1.0 / time_unit_s - 2.0 * lam * float(np.sum(beta * a * a / gap**3))


def optimal_frequencies_for_estimate(
    fleet: DeviceFleet,
    est_upload_times: np.ndarray,
    cost_model: CostModel,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> DeadlineSolution:
    """Solve the convex deadline subproblem for a fleet.

    Parameters
    ----------
    est_upload_times:
        Estimated ``t_com_i`` in seconds (``xi / B_hat_i``).
    cost_model:
        Supplies lambda and the display time unit, so the baseline
        optimizes the same objective the simulator scores.
    """
    that = np.asarray(est_upload_times, dtype=np.float64)
    if that.shape != (fleet.n,):
        raise ValueError(f"expected {fleet.n} upload estimates, got {that.shape}")
    if np.any(that < 0):
        raise ValueError("upload-time estimates must be non-negative")
    a = fleet.cycle_budgets
    beta = fleet.energy_coefficients
    fmax = fleet.max_frequencies
    lam = cost_model.lam
    u = cost_model.time_unit_s

    t_min = float(np.max(a / fmax + that))
    if lam == 0.0:
        # No energy term: every deadline-feasible point is equally good in
        # the estimate; return the canonical full-speed choice (no reason
        # to stretch compute toward the deadline).
        est_energy = float(np.sum(beta * fmax**2 + fleet.tx_powers * that))
        return DeadlineSolution(
            frequencies=fmax.copy(),
            deadline=t_min,
            estimated_cost=cost_model.cost(t_min, est_energy),
        )
    if _phi_prime(t_min, a, beta, that, lam, u) >= 0.0:
        # Time-dominated: run at the deadline-critical (full-speed) point.
        deadline = t_min
    else:
        # Bracket: phi' -> 1/u > 0 as T grows; expand geometrically.
        lo, hi = t_min, 2.0 * t_min + 1.0
        while _phi_prime(hi, a, beta, that, lam, u) < 0.0:
            hi *= 2.0
            if hi > 1e12:  # pragma: no cover - defensive
                break
        for _ in range(max_iter):
            mid = 0.5 * (lo + hi)
            if _phi_prime(mid, a, beta, that, lam, u) < 0.0:
                lo = mid
            else:
                hi = mid
            if hi - lo < tol * max(1.0, t_min):
                break
        deadline = 0.5 * (lo + hi)

    gap = np.maximum(deadline - that, 1e-12)
    freqs = np.minimum(a / gap, fmax)
    est_energy = float(np.sum(beta * freqs**2 + fleet.tx_powers * that))
    est_cost = cost_model.cost(deadline, est_energy)
    return DeadlineSolution(
        frequencies=freqs, deadline=float(deadline), estimated_cost=est_cost
    )
