"""Clairvoyant oracle: optimizes with the *actual* future bandwidth.

Not part of the paper's comparison — it is the per-iteration lower-bound
reference that bounds how much headroom is left above the DRL policy.

Upload time depends on the chosen frequency (a slower device starts its
upload later, under different bandwidth), so the oracle runs a short
fixed-point loop: frequencies -> realized upload times -> re-solve.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Allocator
from repro.baselines.solver import optimal_frequencies_for_estimate


class OracleAllocator(Allocator):
    name = "oracle"

    def __init__(self, fixed_point_iters: int = 4):
        if fixed_point_iters <= 0:
            raise ValueError("fixed_point_iters must be positive")
        self.fixed_point_iters = int(fixed_point_iters)

    def allocate(self, system) -> np.ndarray:
        fleet = system.fleet
        xi = system.config.model_size_mbit
        t0 = system.clock
        freqs = fleet.max_frequencies.copy()
        for _ in range(self.fixed_point_iters):
            t_cmp = fleet.compute_times(freqs)
            t_com = np.array(
                [
                    device.upload_time(t0 + t_cmp[i], xi)
                    for i, device in enumerate(fleet)
                ]
            )
            solution = optimal_frequencies_for_estimate(
                fleet, t_com, system.config.cost
            )
            if np.allclose(solution.frequencies, freqs, rtol=1e-4):
                freqs = solution.frequencies
                break
            freqs = solution.frequencies
        return freqs
