"""Prediction-based allocator: classical forecasting + convex solve.

This is the "struggle with network quality prediction" alternative the
paper's introduction contrasts DRL against: forecast each device's
bandwidth from its slot history with a classical time-series model, then
solve the same deadline subproblem the other baselines use.  It upgrades
the Heuristic baseline (which uses the raw last-iteration observation)
with a proper predictor, and bounds how much of the DRL gain is
explainable by better point forecasts alone.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Allocator
from repro.baselines.solver import optimal_frequencies_for_estimate
from repro.traces.forecast import Forecaster, get_forecaster


class PredictiveAllocator(Allocator):
    """Forecast bandwidth per device, then deadline-solve.

    Parameters
    ----------
    forecaster:
        A :class:`repro.traces.forecast.Forecaster` instance or a registry
        name (``"ewma"``, ``"holt"``, ``"ar1"``, ``"harmonic"``, ``"last"``).
    """

    def __init__(self, forecaster="ewma", **forecaster_kwargs):
        if isinstance(forecaster, str):
            self.name = f"predictive-{forecaster}"
            self.forecaster: Forecaster = get_forecaster(
                forecaster, **forecaster_kwargs
            )
        else:
            self.name = f"predictive-{type(forecaster).__name__}"
            self.forecaster = forecaster

    def allocate(self, system) -> np.ndarray:
        n_slots = system.config.history_slots + 1
        est_bw = np.empty(system.n_devices, dtype=np.float64)
        for i, device in enumerate(system.fleet):
            history = device.trace.history(system.clock, n_slots)
            est_bw[i] = max(self.forecaster.predict(history), 1e-6)
        est_upload = system.config.model_size_mbit / est_bw
        solution = optimal_frequencies_for_estimate(
            system.fleet, est_upload, system.config.cost
        )
        return solution.frequencies
