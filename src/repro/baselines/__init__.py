"""Baseline frequency allocators the paper compares against.

* :class:`HeuristicAllocator` — Wang et al. [3]-style: re-optimizes every
  iteration using the bandwidth observed in the *previous* iteration.
* :class:`StaticAllocator` — Tran et al. [4]-style: assumes a static
  network, solves once from an average-bandwidth estimate and keeps the
  same frequencies for the whole run.
* :class:`OracleAllocator` — clairvoyant lower-bound reference (knows the
  actual trace while optimizing).
* :class:`FullSpeedAllocator`, :class:`RandomAllocator` — sanity
  references.

All of them reduce to the same convex per-iteration subproblem, solved in
:mod:`repro.baselines.solver`.
"""

from repro.baselines.base import Allocator
from repro.baselines.solver import DeadlineSolution, optimal_frequencies_for_estimate
from repro.baselines.heuristic import HeuristicAllocator
from repro.baselines.static_alloc import StaticAllocator
from repro.baselines.fullspeed import FullSpeedAllocator
from repro.baselines.random_alloc import RandomAllocator
from repro.baselines.oracle import OracleAllocator
from repro.baselines.predictive import PredictiveAllocator

__all__ = [
    "Allocator",
    "DeadlineSolution",
    "optimal_frequencies_for_estimate",
    "HeuristicAllocator",
    "StaticAllocator",
    "FullSpeedAllocator",
    "RandomAllocator",
    "OracleAllocator",
    "PredictiveAllocator",
]
