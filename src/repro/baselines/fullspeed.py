"""Full-speed reference: every device always runs at ``delta_max``.

This is the implicit default of energy-unaware federated learning — the
behaviour the paper's motivation (Section II) argues against.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Allocator


class FullSpeedAllocator(Allocator):
    name = "full-speed"

    def allocate(self, system) -> np.ndarray:
        return system.fleet.max_frequencies.copy()
