"""Random reference: uniform frequencies in ``(floor, delta_max]``.

Serves as the no-intelligence control for the DRL comparison.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import Allocator
from repro.utils.rng import SeedLike, as_generator


class RandomAllocator(Allocator):
    name = "random"

    def __init__(self, rng: SeedLike = None, floor_frac: float = 0.1):
        if not 0.0 < floor_frac <= 1.0:
            raise ValueError("floor_frac must be in (0, 1]")
        self.rng = as_generator(rng)
        self.floor_frac = float(floor_frac)

    def allocate(self, system) -> np.ndarray:
        fmax = system.fleet.max_frequencies
        u = self.rng.uniform(self.floor_frac, 1.0, size=system.n_devices)
        return fmax * u
