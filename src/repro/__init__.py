"""repro — reproduction of "Experience-Driven Computational Resource
Allocation of Federated Learning by Deep Reinforcement Learning"
(Zhan, Li, Guo — IPDPS 2020).

The library lowers the CPU-cycle frequency of fast devices in a
synchronized federated-learning group to save energy without slowing the
iteration, choosing frequencies with a PPO actor-critic agent whose state
is each device's recent bandwidth history.

Quickstart::

    from repro import (
        TESTBED_PRESET, build_env, OfflineTrainer, TrainerConfig,
        DRLAllocator, EvaluationRunner, HeuristicAllocator, StaticAllocator,
    )

    env = build_env(TESTBED_PRESET, seed=0)
    trainer = OfflineTrainer(env, TrainerConfig(n_episodes=100), rng=0)
    trainer.train()

    runner = EvaluationRunner(TESTBED_PRESET, seed=0)
    result = runner.evaluate(
        [DRLAllocator(trainer.agent), HeuristicAllocator(), StaticAllocator()]
    )
    print(result.ranking())

Subpackages
-----------
``repro.nn``          numpy neural-network substrate (manual backprop)
``repro.rl``          PPO actor-critic substrate
``repro.traces``      bandwidth traces (synthetic 4G/HSDPA + CSV loader)
``repro.devices``     device timing/energy models (Eqs. 1, 6)
``repro.fl``          FedAvg federated-learning substrate (Eqs. 7, 8, 10)
``repro.faults``      seeded fault injection + graceful degradation
``repro.sim``         continuous-time iteration simulator (Eqs. 2-5, 9, 11)
``repro.env``         Gym-style scheduling environment (Section IV.B)
``repro.baselines``   Heuristic/Static/Oracle/FullSpeed/Random allocators
``repro.core``        Algorithm 1 trainer + online DRL allocator
``repro.parallel``    vectorized envs + batched rollout collection
``repro.resilience``  self-healing: worker supervision, durable
                      checkpoints, graceful drain, kill/resume soak
``repro.experiments`` presets, evaluation runner, per-figure modules
``repro.analysis``    REPxxx static lints + opt-in runtime sanitizer
``repro.serve``       online allocation service: policy artifacts with
                      hot reload, micro-batched inference, TCP server,
                      load generator
"""

from repro.baselines import (
    Allocator,
    FullSpeedAllocator,
    HeuristicAllocator,
    OracleAllocator,
    RandomAllocator,
    StaticAllocator,
)
from repro.core import DRLAllocator, OfflineTrainer, TrainerConfig, TrainingHistory
from repro.devices import DeviceFleet, DeviceParams, FleetConfig, MobileDevice, sample_fleet
from repro.env import EnvConfig, FLSchedulingEnv
from repro.experiments import (
    SIMULATION_PRESET,
    TESTBED_PRESET,
    EvaluationRunner,
    ExperimentPreset,
    build_env,
    build_env_spec,
    build_system,
    run_fig2,
    run_fig6,
    run_fig7,
    run_fig8,
    with_faults,
)
from repro.faults import FaultConfig, FaultSchedule, RoundFailedError
from repro.fl import FederatedTrainer, FLTrainingConfig, make_federated_dataset
from repro.parallel import (
    EnvSpec,
    SerialVecEnv,
    SubprocVecEnv,
    VecEnv,
    VecRolloutCollector,
    WorkerCrashError,
    make_vec_env,
)
from repro.resilience import (
    CheckpointCorruptError,
    CheckpointManager,
    GracefulDrain,
    SoakConfig,
    SupervisedVecEnv,
    SupervisionExhaustedError,
    SupervisorConfig,
    run_crash_soak,
    run_soak,
)
from repro.rl import PPOAgent, PPOConfig
from repro.serve import (
    AllocationServer,
    BatchedInferenceEngine,
    LoadConfig,
    PolicyArtifact,
    PolicyRegistry,
    ServeConfig,
    export_policy,
    run_load,
)
from repro.sim import CostModel, FLSystem, IterationResult, SystemConfig
from repro.traces import (
    BandwidthTrace,
    TracePool,
    hsdpa_bus_trace,
    load_trace_csv,
    lte_walking_trace,
    scenario_trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # traces
    "BandwidthTrace",
    "TracePool",
    "lte_walking_trace",
    "hsdpa_bus_trace",
    "scenario_trace",
    "load_trace_csv",
    # devices
    "DeviceParams",
    "MobileDevice",
    "DeviceFleet",
    "FleetConfig",
    "sample_fleet",
    # sim
    "CostModel",
    "FLSystem",
    "SystemConfig",
    "IterationResult",
    # faults
    "FaultConfig",
    "FaultSchedule",
    "RoundFailedError",
    "with_faults",
    # fl
    "FederatedTrainer",
    "FLTrainingConfig",
    "make_federated_dataset",
    # env
    "FLSchedulingEnv",
    "EnvConfig",
    # rl / core
    "PPOAgent",
    "PPOConfig",
    "OfflineTrainer",
    "TrainerConfig",
    "TrainingHistory",
    "DRLAllocator",
    # parallel
    "EnvSpec",
    "VecEnv",
    "SerialVecEnv",
    "SubprocVecEnv",
    "VecRolloutCollector",
    "WorkerCrashError",
    "make_vec_env",
    # resilience
    "SupervisedVecEnv",
    "SupervisorConfig",
    "SupervisionExhaustedError",
    "CheckpointManager",
    "CheckpointCorruptError",
    "GracefulDrain",
    "SoakConfig",
    "run_soak",
    "run_crash_soak",
    # baselines
    "Allocator",
    "HeuristicAllocator",
    "StaticAllocator",
    "OracleAllocator",
    "FullSpeedAllocator",
    "RandomAllocator",
    # experiments
    "ExperimentPreset",
    "TESTBED_PRESET",
    "SIMULATION_PRESET",
    "EvaluationRunner",
    "build_env",
    "build_env_spec",
    "build_system",
    "run_fig2",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    # serve
    "AllocationServer",
    "BatchedInferenceEngine",
    "LoadConfig",
    "PolicyArtifact",
    "PolicyRegistry",
    "ServeConfig",
    "export_policy",
    "run_load",
]
