"""The benchmark regression gate (``repro perf compare``).

Compares a current ``BENCH_<name>.json`` against a committed baseline
and fails when any gated metric drops below ``(1 - tolerance) *
baseline`` (default tolerance 20%).

What gets gated
---------------
Only the ``gated`` family by default: those are *speedup ratios* of
optimized kernels over their in-process references, measured
back-to-back on the same machine — so a committed floor transfers
across hardware.  Raw ``throughput`` numbers (ops/sec) are
hardware-dependent; pass ``include_raw=True`` (CLI ``--raw``) to gate
them too, e.g. when comparing two runs from the same machine.

Committed baselines under ``benchmarks/baselines/`` hold conservative
*floor* values, not the best numbers ever observed — refresh them only
when an optimization durably raises the floor (see
``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Maximum tolerated relative drop of a gated metric vs. its baseline.
DEFAULT_TOLERANCE = 0.2

#: Process exit codes for the CLI gate.
EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_MISSING_BASELINE = 2


@dataclass(frozen=True)
class MetricVerdict:
    """One gated metric's comparison outcome."""

    family: str
    metric: str
    baseline: float
    current: float
    floor: float
    ok: bool

    def describe(self) -> str:
        state = "ok" if self.ok else "REGRESSION"
        return (
            f"[{state}] {self.family}.{self.metric}: "
            f"current {self.current:.4g} vs baseline {self.baseline:.4g} "
            f"(floor {self.floor:.4g})"
        )


@dataclass(frozen=True)
class CompareResult:
    """All verdicts for one record pair."""

    name: str
    tolerance: float
    verdicts: List[MetricVerdict] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.missing and all(v.ok for v in self.verdicts)

    def describe(self) -> str:
        lines = [
            f"perf compare {self.name!r} "
            f"(tolerance {self.tolerance:.0%}, {len(self.verdicts)} gated metrics)"
        ]
        lines.extend(v.describe() for v in self.verdicts)
        lines.extend(
            f"[REGRESSION] {m}: present in baseline, missing from current run"
            for m in self.missing
        )
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def compare_records(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    include_raw: bool = False,
) -> CompareResult:
    """Gate ``current`` against ``baseline``; see the module docstring.

    Metrics present only in the *current* record pass silently (a new
    optimization is not a regression); metrics present only in the
    *baseline* fail loudly (a gated kernel silently lost its
    measurement).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    if current.get("name") != baseline.get("name"):
        raise ValueError(
            f"record mismatch: current is {current.get('name')!r}, "
            f"baseline is {baseline.get('name')!r}"
        )
    families = ("gated", "throughput") if include_raw else ("gated",)
    verdicts: List[MetricVerdict] = []
    missing: List[str] = []
    for family in families:
        base_metrics = baseline.get(family, {})
        cur_metrics = current.get(family, {})
        for metric, base_value in sorted(base_metrics.items()):
            if metric not in cur_metrics:
                missing.append(f"{family}.{metric}")
                continue
            floor = (1.0 - tolerance) * float(base_value)
            value = float(cur_metrics[metric])
            verdicts.append(
                MetricVerdict(
                    family=family,
                    metric=metric,
                    baseline=float(base_value),
                    current=value,
                    floor=floor,
                    ok=value >= floor,
                )
            )
    return CompareResult(
        name=str(current.get("name")),
        tolerance=tolerance,
        verdicts=verdicts,
        missing=missing,
    )
