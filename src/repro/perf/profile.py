"""Deterministic profiling workloads (``repro profile <workload>``).

Each workload builds a small seeded slice of the system, times its hot
sections through the observability span machinery (an in-memory
telemetry is installed for the duration and restored afterwards), and
returns a :mod:`repro.perf.bench` record.

Two kinds of numbers come out:

* raw throughputs (env steps/s, simulated iterations/s, served
  requests/s) — hardware-dependent, for trend inspection;
* **gated speedup ratios** — each optimized kernel measured
  back-to-back against the reference implementation it replaced
  (:func:`repro.sim.iteration.upload_times_reference`, per-device
  ``BandwidthTrace.history`` loops,
  :func:`repro.rl.gae.compute_gae_reference`, unbatched serving).
  Ratios are hardware-portable, so they are what the committed
  baselines gate (see :mod:`repro.perf.compare`).

Every speedup measurement *asserts bit-identity* between the optimized
and reference results before it is reported: a fast-but-wrong kernel
fails the profile run itself, not some downstream consumer.

Allocation counts come from ``tracemalloc`` in a separate, smaller
pass — tracing slows execution, so it must never overlap the timing
sections.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import MemoryEventSink, Telemetry, get_telemetry, set_telemetry
from repro.perf.bench import make_record

WORKLOADS = ("rollout", "train", "serve")


@dataclass(frozen=True)
class ProfileConfig:
    """Knobs for the profiling workloads (all seeded, all deterministic)."""

    seed: int = 0
    #: Fleet size for the rollout/sim workload (the vectorized trace
    #: kernel engages at repro.traces.kernel.VECTOR_MIN_DEVICES).
    devices: int = 16
    #: Env episodes collected by the rollout workload.
    episodes: int = 4
    #: Standalone simulate_iteration calls timed by the rollout workload.
    sim_iterations: int = 300
    #: Repetitions for the kernel-vs-reference speedup sections.
    micro_reps: int = 150
    #: Training steps (forward/backward/optimizer) for the train workload.
    train_steps: int = 300
    #: Requests pushed through the serving engine per batching mode.
    requests: int = 256
    #: Engine micro-batch bound for the batched serving measurement.
    max_batch: int = 16
    #: Iterations of the tracemalloc allocation pass.
    alloc_iters: int = 30
    #: Reduced-scale smoke mode (CI).
    fast: bool = False

    def scaled(self) -> "ProfileConfig":
        """The fast-mode shrink: same shape, ~5x less work."""
        if not self.fast:
            return self
        return replace(
            self,
            episodes=max(1, self.episodes // 4),
            sim_iterations=max(50, self.sim_iterations // 5),
            micro_reps=max(30, self.micro_reps // 5),
            train_steps=max(60, self.train_steps // 5),
            requests=max(64, self.requests // 4),
            alloc_iters=max(10, self.alloc_iters // 3),
        )


def _testbed_at(devices: int):
    from repro.devices.fleet import FleetConfig
    from repro.experiments.presets import TESTBED_PRESET

    return replace(
        TESTBED_PRESET, n_devices=devices, fleet=FleetConfig(n_devices=devices)
    )


def _sections_from(sink: MemoryEventSink) -> Dict[str, Dict[str, float]]:
    """Aggregate span events into {name: {calls, wall_s, cpu_s}}."""
    out: Dict[str, Dict[str, float]] = {}
    for rec in sink.records:
        if rec.get("type") != "span":
            continue
        agg = out.setdefault(
            rec["name"], {"calls": 0.0, "wall_s": 0.0, "cpu_s": 0.0}
        )
        agg["calls"] += 1.0
        agg["wall_s"] += float(rec["wall_s"])
        agg["cpu_s"] += float(rec["cpu_s"])
    return out


def _span_wall(sections: Dict[str, Dict[str, float]], name: str) -> float:
    if name not in sections:
        raise RuntimeError(f"profiling span {name!r} was never recorded")
    return sections[name]["wall_s"]


class _Meter:
    """Scoped in-memory telemetry install (save/restore the global)."""

    def __init__(self) -> None:
        self.sink = MemoryEventSink()
        self._previous: Optional[Telemetry] = None

    def __enter__(self) -> "_Meter":
        self._previous = get_telemetry()
        set_telemetry(Telemetry(sink=self.sink))
        return self

    def __exit__(self, *exc: object) -> None:
        set_telemetry(self._previous)

    def sections(self) -> Dict[str, Dict[str, float]]:
        return _sections_from(self.sink)


def _alloc_stats(fn, iters: int) -> Dict[str, float]:
    """Blocks/KiB allocated by ``iters`` calls of ``fn`` (tracemalloc)."""
    fn()  # warm caches outside the trace
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        for _ in range(iters):
            fn()
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = after.compare_to(before, "lineno")
    blocks = float(sum(max(s.count_diff, 0) for s in stats))
    kib = float(sum(max(s.size_diff, 0) for s in stats)) / 1024.0
    return {
        "iters": float(iters),
        "blocks_per_iter": blocks / iters,
        "kib_per_iter": kib / iters,
    }


# -- workloads --------------------------------------------------------------
def profile_rollout(config: ProfileConfig) -> Dict[str, Any]:
    """Env rollouts + the sim/trace/GAE hot-path speedup sections."""
    from repro.experiments.presets import build_env, build_system
    from repro.rl.gae import compute_gae, compute_gae_reference
    from repro.sim.iteration import upload_times_reference

    cfg = config.scaled()
    preset = _testbed_at(cfg.devices)
    rng = np.random.default_rng(cfg.seed)
    with _Meter() as meter:
        tel = get_telemetry()

        # -- env rollout throughput ----------------------------------------
        env = build_env(preset, seed=cfg.seed, env_rng=cfg.seed + 1)
        n_steps = 0
        with tel.span("profile.rollout.episodes", episodes=cfg.episodes):
            for _ in range(cfg.episodes):
                env.reset()
                done = False
                while not done:
                    action = rng.uniform(-1.0, 1.0, size=env.act_dim)
                    result = env.step(action)
                    done = result.done
                    n_steps += 1

        # -- standalone simulate_iteration throughput ----------------------
        system = build_system(preset, seed=cfg.seed)
        system.reset(0.0)
        freqs = rng.uniform(
            0.3, 1.0, size=(cfg.sim_iterations, system.n_devices)
        ) * system.fleet.max_frequencies
        with tel.span("profile.sim.iterations", iterations=cfg.sim_iterations):
            for k in range(cfg.sim_iterations):
                system.step(freqs[k])

        # -- upload kernel vs per-device reference -------------------------
        fleet = system.fleet
        kernel = fleet.trace_kernel
        model_mbit = preset.model_size_mbit
        starts = rng.uniform(0.0, 5000.0, size=(cfg.micro_reps, fleet.n))
        fast_out: List[np.ndarray] = []
        with tel.span("profile.upload.kernel", reps=cfg.micro_reps):
            for k in range(cfg.micro_reps):
                fast_out.append(kernel.time_to_transfer(starts[k], model_mbit))
        with tel.span("profile.upload.reference", reps=cfg.micro_reps):
            ref_out = [
                upload_times_reference(fleet, starts[k], model_mbit)
                for k in range(cfg.micro_reps)
            ]
        for fast, ref in zip(fast_out, ref_out):
            if fast.tobytes() != ref.tobytes():
                raise AssertionError(
                    "upload kernel diverged bitwise from the scalar reference"
                )

        # -- bandwidth-state kernel vs per-device reference ----------------
        n_hist = system.config.history_slots + 1
        times = rng.uniform(0.0, 5000.0, size=cfg.micro_reps)
        hist_fast: List[np.ndarray] = []
        with tel.span("profile.bandwidth_state.kernel", reps=cfg.micro_reps):
            for k in range(cfg.micro_reps):
                hist_fast.append(kernel.histories(float(times[k]), n_hist))
        with tel.span("profile.bandwidth_state.reference", reps=cfg.micro_reps):
            hist_ref = [
                np.stack(
                    [d.trace.history(float(times[k]), n_hist) for d in fleet]
                )
                for k in range(cfg.micro_reps)
            ]
        for fast, ref in zip(hist_fast, hist_ref):
            if fast.tobytes() != ref.tobytes():
                raise AssertionError(
                    "bandwidth-state kernel diverged bitwise from reference"
                )

        # -- GAE scan vs numpy-scalar reference ----------------------------
        n_gae = 512
        rewards = rng.normal(size=n_gae)
        values = rng.normal(size=n_gae)
        dones = rng.random(n_gae) < 0.05
        gae_fast = (np.empty(0), np.empty(0))
        with tel.span("profile.gae.fast", reps=cfg.micro_reps):
            for _ in range(cfg.micro_reps):
                gae_fast = compute_gae(rewards, values, dones, 0.1, 0.9, 0.9)
        with tel.span("profile.gae.reference", reps=cfg.micro_reps):
            for _ in range(cfg.micro_reps):
                gae_ref = compute_gae_reference(
                    rewards, values, dones, 0.1, 0.9, 0.9
                )
        if (
            gae_fast[0].tobytes() != gae_ref[0].tobytes()
            or gae_fast[1].tobytes() != gae_ref[1].tobytes()
        ):
            raise AssertionError("GAE scan diverged bitwise from reference")

        sections = meter.sections()

    allocations = _alloc_stats(
        lambda: system.step(freqs[0]), cfg.alloc_iters
    )
    rollout_wall = _span_wall(sections, "profile.rollout.episodes")
    sim_wall = _span_wall(sections, "profile.sim.iterations")
    throughput = {
        "rollout_steps_per_s": n_steps / rollout_wall,
        "sim_iterations_per_s": cfg.sim_iterations / sim_wall,
    }
    gated = {
        "sim_upload_speedup": (
            _span_wall(sections, "profile.upload.reference")
            / _span_wall(sections, "profile.upload.kernel")
        ),
        "bandwidth_state_speedup": (
            _span_wall(sections, "profile.bandwidth_state.reference")
            / _span_wall(sections, "profile.bandwidth_state.kernel")
        ),
        "gae_speedup": (
            _span_wall(sections, "profile.gae.reference")
            / _span_wall(sections, "profile.gae.fast")
        ),
    }
    return make_record(
        name="profile_rollout",
        workload={
            "devices": cfg.devices,
            "episodes": cfg.episodes,
            "sim_iterations": cfg.sim_iterations,
            "micro_reps": cfg.micro_reps,
            "fast": cfg.fast,
        },
        seed=cfg.seed,
        throughput=throughput,
        gated=gated,
        sections=sections,
        allocations=allocations,
    )


def profile_train(config: ProfileConfig) -> Dict[str, Any]:
    """Policy-network training-step throughput (forward/backward/Adam)."""
    from repro.nn.modules import MLP
    from repro.nn.optim import Adam

    cfg = config.scaled()
    rng = np.random.default_rng(cfg.seed)
    obs_dim = cfg.devices * 9
    net = MLP(obs_dim, (64, 64), cfg.devices, rng=cfg.seed)
    opt = Adam(net.parameters())
    x = rng.normal(size=(128, obs_dim))
    grad = rng.normal(size=(128, cfg.devices))

    def train_step() -> None:
        net.forward(x)
        net.zero_grad()
        net.backward(grad)
        opt.step()

    train_step()  # warm-up outside the timed span
    with _Meter() as meter:
        tel = get_telemetry()
        with tel.span("profile.train.steps", steps=cfg.train_steps):
            for _ in range(cfg.train_steps):
                train_step()
        sections = meter.sections()
    allocations = _alloc_stats(train_step, cfg.alloc_iters)
    wall = _span_wall(sections, "profile.train.steps")
    return make_record(
        name="profile_train",
        workload={
            "devices": cfg.devices,
            "train_steps": cfg.train_steps,
            "batch": 128,
            "hidden": [64, 64],
            "fast": cfg.fast,
        },
        seed=cfg.seed,
        throughput={"train_steps_per_s": cfg.train_steps / wall},
        gated={},
        sections=sections,
        allocations=allocations,
    )


def profile_serve(config: ProfileConfig) -> Dict[str, Any]:
    """Serving throughput, micro-batched vs. unbatched, byte-checked."""
    from repro.nn.modules import MLP
    from repro.serve.engine import BatchedInferenceEngine

    cfg = config.scaled()
    rng = np.random.default_rng(cfg.seed)
    obs_dim = cfg.devices * 9
    policy = MLP(obs_dim, (64, 64), cfg.devices, rng=cfg.seed)
    states = rng.uniform(0.0, 9.0, size=(cfg.requests, obs_dim))

    def infer(batch: np.ndarray) -> Tuple[np.ndarray, str]:
        return policy.forward_infer(batch), "profile"

    def pump(max_batch: int, span_name: str) -> int:
        tel = get_telemetry()
        engine = BatchedInferenceEngine(
            infer,
            max_batch=max_batch,
            max_wait_ms=0.2,
            max_queue=cfg.requests,
        )
        try:
            with tel.span(span_name, requests=cfg.requests, max_batch=max_batch):
                tickets = [engine.submit(states[k]) for k in range(cfg.requests)]
                outputs = [t.result(timeout=30.0)[0] for t in tickets]
        finally:
            engine.close()
        # Byte-equality oracle: micro-batched responses must match
        # single-row inference exactly (the batch-stable kernel
        # guarantee the serving stack is built on).
        for k in range(0, cfg.requests, max(1, cfg.requests // 8)):
            solo = policy.forward_infer(states[k : k + 1])[0]
            if outputs[k].tobytes() != solo.tobytes():
                raise AssertionError(
                    "batched serve response diverged bitwise from "
                    "single-request inference"
                )
        return len(outputs)

    with _Meter() as meter:
        served_batched = pump(cfg.max_batch, "profile.serve.batched")
        served_single = pump(1, "profile.serve.single")
        sections = meter.sections()
    batched_wall = _span_wall(sections, "profile.serve.batched")
    single_wall = _span_wall(sections, "profile.serve.single")
    thr_batched = served_batched / batched_wall
    thr_single = served_single / single_wall
    return make_record(
        name="profile_serve",
        workload={
            "devices": cfg.devices,
            "requests": cfg.requests,
            "max_batch": cfg.max_batch,
            "fast": cfg.fast,
        },
        seed=cfg.seed,
        throughput={
            "serve_batched_requests_per_s": thr_batched,
            "serve_single_requests_per_s": thr_single,
        },
        gated={"serve_batch_speedup": thr_batched / thr_single},
        sections=sections,
        allocations={},
    )


def run_profile(workload: str, config: ProfileConfig) -> Dict[str, Any]:
    """Dispatch to one of :data:`WORKLOADS`."""
    runners = {
        "rollout": profile_rollout,
        "train": profile_train,
        "serve": profile_serve,
    }
    if workload not in runners:
        raise ValueError(
            f"unknown profile workload {workload!r}; choose from {WORKLOADS}"
        )
    return runners[workload](config)
