"""repro.perf — deterministic profiling harness + benchmark regression gate.

``repro profile {rollout,train,serve}`` times the hot paths of the
simulator, the policy-network training step and the serving engine on
small seeded workloads, asserting along the way that every optimized
kernel reproduces its reference implementation bit-for-bit.  Results
land in schema-versioned ``BENCH_<name>.json`` records; ``repro perf
compare`` gates a fresh record against the committed baselines under
``benchmarks/baselines/`` (see ``docs/performance.md``).
"""

from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    bench_path,
    load_record,
    make_record,
    validate_record,
    write_record,
)
from repro.perf.compare import (
    DEFAULT_TOLERANCE,
    EXIT_MISSING_BASELINE,
    EXIT_OK,
    EXIT_REGRESSION,
    CompareResult,
    MetricVerdict,
    compare_records,
)
from repro.perf.profile import (
    WORKLOADS,
    ProfileConfig,
    profile_rollout,
    profile_serve,
    profile_train,
    run_profile,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "bench_path",
    "load_record",
    "make_record",
    "validate_record",
    "write_record",
    "DEFAULT_TOLERANCE",
    "EXIT_OK",
    "EXIT_REGRESSION",
    "EXIT_MISSING_BASELINE",
    "CompareResult",
    "MetricVerdict",
    "compare_records",
    "WORKLOADS",
    "ProfileConfig",
    "profile_rollout",
    "profile_train",
    "profile_serve",
    "run_profile",
]
