"""Schema-versioned benchmark records (``BENCH_<name>.json``).

One record per profiled workload, carrying four metric families:

* ``throughput`` — raw ops/sec numbers.  Hardware-dependent, recorded
  for trend inspection but **not** gated by default: a committed floor
  for them would trip on any slower CI runner.
* ``gated`` — hardware-portable *speedup ratios* (optimized kernel vs.
  in-process reference implementation, measured back-to-back on the
  same machine).  These are what ``repro perf compare`` enforces
  against a committed baseline.
* ``sections`` — per-span call counts and wall/CPU seconds, harvested
  from the observability span machinery.
* ``allocations`` — tracemalloc block/byte counts for the measured
  hot section.

Records also pin provenance (seed, workload parameters, git sha) so a
regression report can name exactly what was measured.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, Optional

#: Bump when the record layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Keys every record must carry.
_REQUIRED = ("schema_version", "name", "workload", "seed", "throughput", "gated")


def make_record(
    name: str,
    workload: Dict[str, Any],
    seed: int,
    throughput: Dict[str, float],
    gated: Dict[str, float],
    sections: Optional[Dict[str, Dict[str, float]]] = None,
    allocations: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Assemble a validated benchmark record."""
    from repro.obs import RunManifest

    record: Dict[str, Any] = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": str(name),
        "workload": dict(workload),
        "seed": int(seed),
        "git_sha": RunManifest.collect(command=f"profile:{name}", seed=seed).git_sha,
        "throughput": {k: float(v) for k, v in throughput.items()},
        "gated": {k: float(v) for k, v in gated.items()},
        "sections": {
            k: {kk: float(vv) for kk, vv in v.items()}
            for k, v in (sections or {}).items()
        },
        "allocations": {k: float(v) for k, v in (allocations or {}).items()},
    }
    validate_record(record)
    return record


def validate_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Check the record shape; raises ``ValueError`` with the defect."""
    for key in _REQUIRED:
        if key not in record:
            raise ValueError(f"benchmark record missing required key {key!r}")
    version = record["schema_version"]
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"benchmark record schema v{version} unsupported "
            f"(this build reads v{BENCH_SCHEMA_VERSION})"
        )
    for family in ("throughput", "gated"):
        metrics = record[family]
        if not isinstance(metrics, dict):
            raise ValueError(f"record[{family!r}] must be a metric dict")
        for metric, value in metrics.items():
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or not math.isfinite(value)
            ):
                raise ValueError(f"{family}.{metric} is not a finite number")
            if value < 0:
                raise ValueError(f"{family}.{metric} must be non-negative")
    return record


def bench_path(out_dir: str, name: str) -> str:
    return os.path.join(out_dir, f"BENCH_{name}.json")


def write_record(record: Dict[str, Any], out_dir: str) -> str:
    """Write ``BENCH_<name>.json`` under ``out_dir``; returns the path."""
    validate_record(record)
    os.makedirs(out_dir, exist_ok=True)
    path = bench_path(out_dir, record["name"])
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_record(path: str) -> Dict[str, Any]:
    """Read and validate a benchmark record."""
    with open(path) as fh:
        record = json.load(fh)
    return validate_record(record)
