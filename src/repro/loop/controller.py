"""The loop controller: serve → detect → retrain → gate → watch.

:class:`LoopController` closes Algorithm 1's online phase around the
serve stack as an explicit state machine:

.. code-block:: text

    MONITORING --drift--> RETRAINING --candidate--> CANARY
        ^                     |  (retrain failed)      |
        |<--------------------+          +-- rejected -+-- published
        |         cooldown               v                  |
        +---------------- MONITORING  WATCHING <------------+
        ^                                 |
        +---- ok / ROLLBACK (regressed) --+

Each round the controller asks the live
:class:`~repro.serve.registry.PolicyRegistry` handle for an allocation
(the same batch-stable kernel the TCP server runs), steps the
:class:`~repro.sim.system.FLSystem`, and feeds the outcome to the
:class:`~repro.loop.experience.ExperienceStore` and
:class:`~repro.loop.drift.DriftDetector`.  A drift trigger retrains on
traces reconstructed from recent experience, the
:class:`~repro.loop.canary.CanaryGate` shadow-evaluates the candidate
(replay + a seeded drifting preset) and only a statistically
significant winner is hot-published; a published candidate is then
*watched* for ``watch_rounds`` served rounds and rolled back
automatically if its realized cost regresses past the canary's
estimate.

Every transition emits a ``loop`` telemetry event and bumps a
``loop.*`` counter; :meth:`LoopController.status` (mirrored to
``status.json`` for ``repro loop status``) is the operator view.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.loop.canary import CanaryConfig, CanaryGate, GateDecision, SystemFactory
from repro.loop.drift import DriftBaseline, DriftDetector, DriftReport
from repro.loop.experience import ExperienceStore
from repro.loop.retrain import (
    RetrainConfig,
    Retrainer,
    RetrainError,
    SubprocessRetrainer,
)
from repro.obs import get_telemetry
from repro.serve.registry import PolicyHandle, PolicyRegistry
from repro.sim.system import FLSystem
from repro.traces.base import BandwidthTrace
from repro.utils.rng import RngFactory
from repro.utils.serialization import CheckpointCorruptError

STATUS_FILENAME = "status.json"

#: Loop lifecycle states (plain strings: they go straight into JSON).
MONITORING = "monitoring"
RETRAINING = "retraining"
CANARY = "canary"
WATCHING = "watching"

_STATES = (MONITORING, RETRAINING, CANARY, WATCHING)


@dataclass
class LoopConfig:
    """Thresholds and budgets of one closed-loop run."""

    #: Rounds served before the drift baseline freezes.
    warmup_rounds: int = 24
    #: Page–Hinkley drift magnitude tolerated (z-score units).
    drift_delta: float = 0.5
    #: Page–Hinkley trigger threshold (cumulative z-score gap).
    drift_threshold: float = 10.0
    #: Observations before the test may fire.
    drift_min_samples: int = 8
    #: Recent records replayed into retraining traces (None = all).
    replay_last_n: Optional[int] = None
    retrain: RetrainConfig = field(default_factory=RetrainConfig)
    canary: CanaryConfig = field(default_factory=CanaryConfig)
    #: Rounds after a rejection before drift may re-trigger.
    cooldown_rounds: int = 16
    #: Publishes allowed per run (0 = monitor/record only).
    max_publishes: int = 4
    #: Seed for the gate's drifting-trace evaluation preset.
    canary_trace_seed: int = 7
    #: ``(preset, seed, devices)`` the subprocess retrainer rebuilds the
    #: fleet from; unused in inline mode (it has the live fleet).
    subprocess_preset: str = "testbed"
    subprocess_seed: int = 0
    subprocess_devices: Optional[int] = None

    def validate(self) -> "LoopConfig":
        if self.warmup_rounds < 4:
            raise ValueError("warmup_rounds must be at least 4")
        if self.drift_min_samples < 1:
            raise ValueError("drift_min_samples must be at least 1")
        if self.cooldown_rounds < 0:
            raise ValueError("cooldown_rounds must be non-negative")
        if self.max_publishes < 0:
            raise ValueError("max_publishes must be non-negative")
        self.retrain.validate()
        self.canary.validate()
        return self


class LoopController:
    """Drives the closed policy lifecycle over one live system.

    ``loop_dir`` holds the run's working artifacts: candidate exports,
    refreshed agent checkpoints and ``status.json``.  The experience
    store may live inside it or anywhere else.
    """

    def __init__(
        self,
        system: FLSystem,
        registry: PolicyRegistry,
        store: ExperienceStore,
        agent_checkpoint: str,
        loop_dir: str,
        config: Optional[LoopConfig] = None,
        canary_factory: Optional[SystemFactory] = None,
    ) -> None:
        self.system = system
        self.registry = registry
        self.store = store
        self.agent_checkpoint = str(agent_checkpoint)
        self.loop_dir = str(loop_dir)
        self.config = (config or LoopConfig()).validate()
        os.makedirs(self.loop_dir, exist_ok=True)
        self.state = MONITORING
        self.rounds = 0
        self.drift_events = 0
        self.retrains = 0
        self.publishes = 0
        self.rejects = 0
        self.rollbacks = 0
        self.last_decision: Optional[GateDecision] = None
        self.last_drift: Optional[DriftReport] = None
        self.detector: Optional[DriftDetector] = None
        self._warm_bw: List[float] = []
        self._warm_rw: List[float] = []
        self._cooldown = 0
        self._watch_costs: List[float] = []
        self._watch_incumbent: Optional[PolicyHandle] = None
        self._candidate_seq = 0
        self._pending_checkpoint: Optional[str] = None
        self._canary_factory = canary_factory
        # Fail fast on an unservable registry, like AllocationServer does.
        self._served_version = self.registry.current.version

    # -- state machine -------------------------------------------------------
    def _transition(self, state: str, **fields: Any) -> None:
        if state not in _STATES:
            raise ValueError(f"unknown loop state {state!r}")
        self.state = state
        tel = get_telemetry()
        if tel.enabled:
            tel.on_loop("state", state=state, round=self.rounds, **fields)
        self._write_status()

    def run(self, n_rounds: int) -> Dict[str, Any]:
        """Serve ``n_rounds`` through the full lifecycle; final status."""
        if n_rounds <= 0:
            raise ValueError("n_rounds must be positive")
        for _ in range(n_rounds):
            self.step()
        self.store.flush()
        self._write_status()
        return self.status()

    def step(self) -> None:
        """One served round plus any lifecycle transitions it triggers."""
        handle = self.registry.current
        state = self.system.bandwidth_state()
        flat = state.ravel()
        frequencies = handle.artifact.act(flat)
        result = self.system.step(frequencies)
        self.rounds += 1
        self._served_version = handle.version
        self.store.append(
            flat,
            frequencies,
            reward=float(result.reward),
            cost=float(result.cost),
            clock=float(result.start_time),
            policy_version=handle.version,
        )
        newest_bw = state[:, 0]
        if self.state == WATCHING:
            self._watch(result.cost)
            return
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if self.detector is None:
            self._warm_bw.append(float(newest_bw.mean()))
            self._warm_rw.append(float(result.reward))
            if len(self._warm_bw) >= self.config.warmup_rounds:
                self.detector = DriftDetector(
                    DriftBaseline.from_samples(self._warm_bw, self._warm_rw),
                    delta=self.config.drift_delta,
                    threshold=self.config.drift_threshold,
                    min_samples=self.config.drift_min_samples,
                )
            return
        report = self.detector.update(newest_bw, float(result.reward))
        if report is not None:
            self.last_drift = report
            self.drift_events += 1
            self._on_drift(report)

    # -- drift -> retrain -> canary ------------------------------------------
    def _on_drift(self, report: DriftReport) -> None:
        if self.publishes >= self.config.max_publishes:
            # Budget spent: keep recording, stop retraining.
            self._rebaseline()
            self._cooldown = self.config.cooldown_rounds
            return
        self._transition(RETRAINING, stream=report.kind)
        candidate = self._retrain()
        if candidate is None:
            self._rebaseline()
            self._cooldown = self.config.cooldown_rounds
            self._transition(MONITORING, retrain="failed")
            return
        self.retrains += 1
        self._transition(CANARY, candidate=os.path.basename(candidate))
        incumbent = self.registry.current
        gate = CanaryGate(self.registry, self.config.canary)
        try:
            decision = gate.consider(candidate, self._factories())
        except (CheckpointCorruptError, ValueError, OSError) as exc:
            # A corrupt/unloadable candidate is a rejection, not a loop
            # crash — the incumbent keeps serving untouched.
            tel = get_telemetry()
            if tel.enabled:
                tel.on_loop("reject", reason=f"candidate unusable: {exc}")
            self.rejects += 1
            self._rebaseline()
            self._cooldown = self.config.cooldown_rounds
            self._transition(MONITORING, rejected="candidate unusable")
            return
        self.last_decision = decision
        if decision.accepted:
            self.publishes += 1
            if self._pending_checkpoint is not None:
                self.agent_checkpoint = self._pending_checkpoint
                self._pending_checkpoint = None
            self._watch_costs = []
            self._watch_incumbent = incumbent
            self._transition(WATCHING, version=decision.published_version)
        else:
            self.rejects += 1
            self._rebaseline()
            self._cooldown = self.config.cooldown_rounds
            self._transition(MONITORING, rejected=decision.reason)

    def _retrain(self) -> Optional[str]:
        """Produce a candidate artifact path, or None on failure."""
        cfg = self.config
        self._candidate_seq += 1
        out_path = os.path.join(
            self.loop_dir, f"candidate-{self._candidate_seq:04d}.policy.npz"
        )
        tel = get_telemetry()
        if tel.enabled:
            tel.on_loop(
                "retrain",
                mode=cfg.retrain.mode,
                episodes=cfg.retrain.episodes,
                candidate=os.path.basename(out_path),
            )
        try:
            if cfg.retrain.mode == "subprocess":
                sub = SubprocessRetrainer(
                    self.agent_checkpoint,
                    self.store.directory,
                    preset_name=cfg.subprocess_preset,
                    preset_seed=cfg.subprocess_seed,
                    config=cfg.retrain,
                    devices=cfg.subprocess_devices,
                    replay_last_n=cfg.replay_last_n,
                )
                result = sub.retrain(out_path)
            else:
                retrainer = Retrainer(
                    self.agent_checkpoint,
                    self.system.fleet,
                    self.system.config,
                    cfg.retrain,
                )
                traces = self.store.bandwidth_traces(
                    self.system.config.history_slots,
                    slot_duration=self.system.config.slot_duration,
                    last_n=cfg.replay_last_n,
                )
                result = retrainer.retrain(traces, out_path)
        except (RetrainError, ValueError, OSError) as exc:
            tel = get_telemetry()
            if tel.enabled:
                tel.on_loop("retrain_failed", error=str(exc).splitlines()[0])
            return None
        # Held until the gate's verdict: only a *published* candidate's
        # refreshed checkpoint becomes the next warm-start — a rejected
        # retrain must not poison later retrains with its weights.
        self._pending_checkpoint = result.agent_checkpoint
        return out_path

    def _factories(self) -> Dict[str, SystemFactory]:
        """The gate's evaluation systems: experience replay + drift preset."""
        cfg = self.config
        history_slots = self.system.config.history_slots
        slot = self.system.config.slot_duration
        replay_traces = self.store.bandwidth_traces(
            history_slots, slot_duration=slot, last_n=cfg.replay_last_n
        )
        start = (history_slots + 1) * slot

        def replay_factory() -> FLSystem:
            system = FLSystem(
                self.system.fleet.with_traces(replay_traces), self.system.config
            )
            system.reset(start)
            return system

        factories: Dict[str, SystemFactory] = {"replay": replay_factory}
        if self._canary_factory is not None:
            factories["drift-preset"] = self._canary_factory
        else:
            factories["drift-preset"] = self._default_drift_factory()
        return factories

    def _default_drift_factory(self) -> SystemFactory:
        """A seeded drifting-trace preset evaluation system.

        Fresh walking traces (``drift_amplitude`` 0.85, see
        :func:`repro.traces.synthetic.lte_walking_trace`) on the live
        fleet's device parameters — the gate's out-of-replay check that
        a candidate generalizes to drift it has not literally seen.
        """
        from repro.traces.synthetic import lte_walking_trace

        cfg = self.config
        n = self.system.fleet.n
        slot = self.system.config.slot_duration
        n_slots = max(256, self.config.canary.iterations * 8)
        rngs = RngFactory(cfg.canary_trace_seed)
        traces: List[BandwidthTrace] = [
            lte_walking_trace(
                n_slots=n_slots, slot_duration=slot, rng=rng, name=f"canary-{i}"
            )
            for i, rng in enumerate(rngs.spawn("canary-traces", n))
        ]
        start = (self.system.config.history_slots + 1) * slot

        def factory() -> FLSystem:
            system = FLSystem(
                self.system.fleet.with_traces(traces), self.system.config
            )
            system.reset(start)
            return system

        return factory

    # -- post-publish watch --------------------------------------------------
    def _watch(self, cost: float) -> None:
        self._watch_costs.append(float(cost))
        if len(self._watch_costs) < self.config.canary.watch_rounds:
            return
        decision = self.last_decision
        incumbent = self._watch_incumbent
        assert decision is not None and incumbent is not None
        gate = CanaryGate(self.registry, self.config.canary)
        served = np.asarray(self._watch_costs, dtype=np.float64)
        if gate.should_rollback(decision, served):
            gate.rollback(incumbent)
            self.rollbacks += 1
            outcome = "rolled_back"
        else:
            outcome = "kept"
        self._watch_costs = []
        self._watch_incumbent = None
        self._rebaseline()
        self._cooldown = self.config.cooldown_rounds
        self._transition(
            MONITORING, watch=outcome, served_mean=round(float(served.mean()), 6)
        )

    def _rebaseline(self) -> None:
        """Re-freeze the drift baseline from the most recent window.

        After a publish/reject the old baseline describes a world the
        loop has already reacted to; drift is measured against the new
        normal from here on.
        """
        window = max(self.config.warmup_rounds, self.config.drift_min_samples)
        try:
            arr = self.store.arrays(last_n=window)
        except ValueError:
            self.detector = None
            self._warm_bw, self._warm_rw = [], []
            return
        history_slots = self.system.config.history_slots
        states = arr["states"]
        n = states.shape[1] // (history_slots + 1)
        newest = states.reshape(states.shape[0], n, history_slots + 1)[:, :, 0]
        bw = newest.mean(axis=1)
        rw = arr["rewards"]
        if bw.size < 2:
            self.detector = None
            self._warm_bw, self._warm_rw = [], []
            return
        baseline = DriftBaseline.from_samples(bw, rw)
        if self.detector is None:
            self.detector = DriftDetector(
                baseline,
                delta=self.config.drift_delta,
                threshold=self.config.drift_threshold,
                min_samples=self.config.drift_min_samples,
            )
        else:
            self.detector.rebaseline(baseline)

    # -- status --------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """The operator view: state, counters, versions, last verdicts."""
        out: Dict[str, Any] = {
            "state": self.state,
            "rounds": self.rounds,
            "records": len(self.store),
            "serving": self._served_version,
            "drift_events": self.drift_events,
            "retrains": self.retrains,
            "publishes": self.publishes,
            "rejects": self.rejects,
            "rollbacks": self.rollbacks,
        }
        if self.last_drift is not None:
            out["last_drift"] = {
                "stream": self.last_drift.kind,
                "statistic": round(self.last_drift.statistic, 4),
                "threshold": self.last_drift.threshold,
            }
        if self.last_decision is not None:
            out["last_canary"] = {
                "accepted": self.last_decision.accepted,
                "reason": self.last_decision.reason,
                "improvement": round(self.last_decision.improvement, 6),
                "p_value": round(self.last_decision.p_value, 6),
                "published_version": self.last_decision.published_version,
            }
        return out

    def _write_status(self) -> None:
        tmp = os.path.join(self.loop_dir, STATUS_FILENAME + ".tmp")
        with open(tmp, "w") as fh:
            json.dump(self.status(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, os.path.join(self.loop_dir, STATUS_FILENAME))


def read_status(loop_dir: str) -> Dict[str, Any]:
    """Load ``status.json`` written by a (possibly live) loop run."""
    path = os.path.join(loop_dir, STATUS_FILENAME)
    if not os.path.exists(path):
        raise FileNotFoundError(f"no {STATUS_FILENAME} in {loop_dir!r}")
    with open(path) as fh:
        loaded = json.load(fh)
    if not isinstance(loaded, dict):
        raise ValueError(f"{path!r} does not contain a status object")
    return loaded
