"""Retraining: warm-start PPO on recent experience, export a candidate.

When drift fires, the loop rebuilds the world the incumbent actually
served — the device fleet it deployed against, with per-device traces
reconstructed from recorded states
(:meth:`~repro.loop.experience.ExperienceStore.bandwidth_traces`) — and
continues Algorithm 1 from the incumbent's training checkpoint instead
of from scratch.  The result is distilled through
:func:`~repro.serve.artifact.export_policy` into a *candidate* artifact
that the :class:`~repro.loop.canary.CanaryGate` must approve before it
ever serves.

Two execution modes:

* :class:`Retrainer` — in-process, fully deterministic; what the tests
  and the loop controller's default path run.
* :class:`SubprocessRetrainer` — the supervised background form:
  ``repro loop retrain`` runs in a child process with a timeout and a
  bounded restart budget (the :mod:`repro.resilience` supervisor
  pattern), so a hung or crashed retrain never wedges the loop.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.trainer import OfflineTrainer, TrainerConfig
from repro.devices.fleet import DeviceFleet
from repro.env.fl_env import EnvConfig, FLSchedulingEnv
from repro.obs import get_telemetry
from repro.resilience.checkpoint import load_checkpoint_with_fallback
from repro.serve.artifact import (
    PolicyArtifact,
    detect_policy_kind,
    export_policy,
    infer_hidden,
)
from repro.sim.system import FLSystem, SystemConfig
from repro.traces.base import BandwidthTrace


@dataclass
class RetrainConfig:
    """How much (and how) to continue training on recent experience."""

    episodes: int = 8
    episode_length: int = 16
    #: PPO buffer |D|; small so short retrains actually update.
    buffer_size: int = 64
    #: Seed for the retraining env/agent RNG streams.
    seed: int = 0
    floor_frac: float = 0.1
    #: ``inline`` (in-process) or ``subprocess`` (supervised child).
    mode: str = "inline"
    #: Subprocess wall-clock budget per attempt (seconds).
    timeout_s: float = 600.0
    #: Subprocess restarts tolerated before giving up.
    max_restarts: int = 1

    def validate(self) -> "RetrainConfig":
        if self.episodes <= 0:
            raise ValueError("episodes must be positive")
        if self.episode_length <= 0:
            raise ValueError("episode_length must be positive")
        if self.buffer_size <= 0:
            raise ValueError("buffer_size must be positive")
        if self.mode not in ("inline", "subprocess"):
            raise ValueError("mode must be 'inline' or 'subprocess'")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        return self


@dataclass(frozen=True)
class RetrainResult:
    """A finished retrain: the candidate artifact and its provenance."""

    artifact: PolicyArtifact
    agent_checkpoint: str
    episodes: int
    final_avg_cost: float


class RetrainError(RuntimeError):
    """The retrain failed (bad checkpoint, or subprocess budget spent)."""


class Retrainer:
    """In-process warm-started PPO continuation on replayed traces."""

    def __init__(
        self,
        checkpoint_path: str,
        fleet: DeviceFleet,
        system_config: SystemConfig,
        config: Optional[RetrainConfig] = None,
    ) -> None:
        self.checkpoint_path = str(checkpoint_path)
        self.fleet = fleet
        self.system_config = system_config
        self.config = (config or RetrainConfig()).validate()

    def retrain(
        self, traces: Sequence[BandwidthTrace], out_path: str
    ) -> RetrainResult:
        """Continue training on ``traces``; export a candidate artifact.

        The trainer is seeded from the config, warm-started from the
        incumbent's training checkpoint (weights, normalizer moments,
        optimizer state via the agent state dict), and its refreshed
        checkpoint is written next to the candidate so the *next*
        retrain warm-starts from this one.
        """
        cfg = self.config
        state, _used = load_checkpoint_with_fallback(self.checkpoint_path)
        obs_dim = int(np.asarray(state["meta/obs_dim"]))
        act_dim = int(np.asarray(state["meta/act_dim"]))
        if act_dim != self.fleet.n:
            raise RetrainError(
                f"checkpoint act_dim {act_dim} does not match the "
                f"fleet's {self.fleet.n} devices"
            )
        fleet = self.fleet.with_traces(list(traces))
        system = FLSystem(fleet, self.system_config)
        env = FLSchedulingEnv(
            system,
            EnvConfig(episode_length=cfg.episode_length, random_start=True),
            rng=cfg.seed + 1,
        )
        if env.obs_dim != obs_dim:
            raise RetrainError(
                f"checkpoint obs_dim {obs_dim} does not match the "
                f"replay env's {env.obs_dim}"
            )
        trainer = OfflineTrainer(
            env,
            TrainerConfig(
                n_episodes=cfg.episodes,
                hidden=infer_hidden(state),
                policy=detect_policy_kind(state),
                buffer_size=cfg.buffer_size,
            ),
            rng=cfg.seed,
        )
        trainer.agent.load_state_dict(state)
        # The saved agent was frozen for serving; re-open the running
        # statistics so continued training keeps adapting them.
        trainer.agent.obs_norm.unfreeze()
        trainer.agent.reward_scaler.frozen = False
        history = trainer.train()
        agent_out = out_path + ".agent.npz"
        trainer.save_agent(agent_out)
        artifact = export_policy(
            agent_out,
            out_path,
            fleet.max_frequencies,
            floor_frac=cfg.floor_frac,
        )
        costs = np.asarray(history.episode_costs, dtype=np.float64)
        tail = costs[-max(1, costs.size // 4):]
        return RetrainResult(
            artifact=artifact,
            agent_checkpoint=agent_out,
            episodes=int(history.n_episodes),
            final_avg_cost=float(tail.mean()),
        )


class SubprocessRetrainer:
    """Supervised background retrain via ``repro loop retrain``.

    The child rebuilds the fleet from ``(preset, seed)``, reconstructs
    traces from the experience directory, warm-starts from the
    checkpoint and writes the candidate artifact.  A hung child is
    killed at ``timeout_s``; failures are retried up to
    ``max_restarts`` times (each restart emits a ``loop`` telemetry
    event), after which :class:`RetrainError` propagates to the loop.
    """

    def __init__(
        self,
        checkpoint_path: str,
        experience_dir: str,
        preset_name: str,
        preset_seed: int,
        config: Optional[RetrainConfig] = None,
        devices: Optional[int] = None,
        replay_last_n: Optional[int] = None,
    ) -> None:
        self.checkpoint_path = str(checkpoint_path)
        self.experience_dir = str(experience_dir)
        self.preset_name = str(preset_name)
        self.preset_seed = int(preset_seed)
        self.config = (config or RetrainConfig()).validate()
        self.devices = devices
        self.replay_last_n = replay_last_n

    def command(self, out_path: str) -> List[str]:
        cfg = self.config
        argv = [
            sys.executable, "-m", "repro", "loop", "retrain",
            "--checkpoint", self.checkpoint_path,
            "--experience-dir", self.experience_dir,
            "--out", out_path,
            "--preset", self.preset_name,
            "--seed", str(self.preset_seed),
            "--episodes", str(cfg.episodes),
            "--episode-length", str(cfg.episode_length),
            "--buffer-size", str(cfg.buffer_size),
            "--retrain-seed", str(cfg.seed),
            "--floor-frac", str(cfg.floor_frac),
        ]
        if self.devices is not None:
            argv += ["--devices", str(self.devices)]
        if self.replay_last_n is not None:
            argv += ["--last-n", str(self.replay_last_n)]
        return argv

    def retrain(self, out_path: str) -> RetrainResult:
        cfg = self.config
        tel = get_telemetry()
        argv = self.command(out_path)
        failures: List[str] = []
        for attempt in range(cfg.max_restarts + 1):
            try:
                proc = subprocess.run(
                    argv,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    timeout=cfg.timeout_s,
                )
            except subprocess.TimeoutExpired:
                failures.append(f"attempt {attempt}: timed out after {cfg.timeout_s}s")
            else:
                if proc.returncode == 0 and os.path.exists(out_path):
                    return RetrainResult(
                        artifact=PolicyArtifact.load(out_path),
                        agent_checkpoint=out_path + ".agent.npz",
                        episodes=cfg.episodes,
                        final_avg_cost=float("nan"),
                    )
                tail = proc.stdout.decode("utf-8", "replace").splitlines()[-3:]
                failures.append(
                    f"attempt {attempt}: exit {proc.returncode}: {' | '.join(tail)}"
                )
            if attempt < cfg.max_restarts and tel.enabled:
                tel.on_loop("retrain_restart", attempt=attempt, error=failures[-1])
        raise RetrainError(
            "subprocess retrain exhausted its restart budget:\n"
            + "\n".join(failures)
        )
