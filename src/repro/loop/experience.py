"""Durable, rotated log of served experience.

The paper's premise is *experience-driven* allocation: the agent learns
from the bandwidth history it actually observed (Algorithm 1).  Once a
policy is frozen into a serving artifact that experience keeps arriving
— every served allocation realizes a reward (Eq. 13) — but PR 6's stack
dropped it on the floor.  :class:`ExperienceStore` is the loop's memory:
an append-only log of ``(state, frequencies, reward, cost, clock,
policy_version)`` records, buffered in memory and flushed as rotated,
schema-versioned npz segments through the durable
:func:`~repro.utils.serialization.save_npz_state` path (fsync + rename
+ sha256 sidecar), with a rewritten-atomically ``index.jsonl`` beside
them so operators can inspect the log without loading a segment.

Recent experience is replayable two ways:

* :meth:`ExperienceStore.to_rollout_buffer` — a filled
  :class:`~repro.rl.buffer.RolloutBuffer` for offline analysis;
* :meth:`ExperienceStore.bandwidth_traces` — per-device
  :class:`~repro.traces.base.BandwidthTrace` objects *reconstructed
  from the recorded states* (the state ``s_k`` is the (N, H+1)
  bandwidth-history matrix, so its newest-slot column across
  consecutive records recovers the live bandwidth series), which is how
  the :class:`~repro.loop.retrain.Retrainer` rebuilds the drifted world
  the incumbent actually served.
"""

from __future__ import annotations

import json
import os
import re
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.rl.buffer import RolloutBuffer
from repro.traces.base import BandwidthTrace
from repro.utils.serialization import (
    CHECKSUM_SUFFIX,
    load_npz_state,
    save_npz_state,
)

#: Segment layout version; bump on breaking key/semantic changes.
EXPERIENCE_SCHEMA_VERSION = 1

#: Segment filename pattern: ``segment-<first-record-index>.npz``.
SEGMENT_PATTERN = re.compile(r"^segment-(\d{10})\.npz$")

INDEX_FILENAME = "index.jsonl"


@dataclass(frozen=True)
class ExperienceRecord:
    """One served allocation and its realized outcome."""

    state: np.ndarray
    frequencies: np.ndarray
    reward: float
    cost: float
    clock: float
    policy_version: str


def _segment_name(start: int) -> str:
    return f"segment-{start:010d}.npz"


class ExperienceStore:
    """Append-only rotated experience log under one directory.

    Records accumulate in memory and are flushed as one durable npz
    segment every ``segment_records`` appends (or on :meth:`flush`).
    At most ``keep_segments`` segments are retained; older ones are
    rotated out together with their checksum sidecars, bounding disk
    use while keeping a recent-experience window for retraining.

    The store is thread-safe: when wired as the serving layer's outcome
    hook it is appended to from concurrent request-handler threads while
    the loop controller reads it back for retraining.  One internal lock
    serializes buffer mutation, segment flushing and replay snapshots;
    ``*_locked`` helpers assume the caller holds it.
    """

    def __init__(
        self,
        directory: str,
        segment_records: int = 256,
        keep_segments: int = 64,
        durable: bool = True,
    ) -> None:
        if segment_records <= 0:
            raise ValueError("segment_records must be positive")
        if keep_segments <= 0:
            raise ValueError("keep_segments must be positive")
        self.directory = str(directory)
        self.segment_records = int(segment_records)
        self.keep_segments = int(keep_segments)
        self.durable = bool(durable)
        os.makedirs(self.directory, exist_ok=True)
        self._lock = threading.Lock()
        self._buffer: List[ExperienceRecord] = []
        self._persisted = 0  # records inside on-disk segments
        self._next_start = 0  # first-record index of the next segment
        for path in self.segment_paths():
            arrays = load_npz_state(path, verify=False)
            n = int(np.asarray(arrays["rewards"]).shape[0])
            self._persisted += n
            start = int(np.asarray(arrays["meta/seq"]))
            self._next_start = max(self._next_start, start + n)

    # -- writing -------------------------------------------------------------
    def append(
        self,
        state: np.ndarray,
        frequencies: np.ndarray,
        reward: float,
        cost: float,
        clock: float,
        policy_version: str = "",
    ) -> None:
        """Record one served allocation; flushes a segment when due."""
        record = ExperienceRecord(
            state=np.asarray(state, dtype=np.float64).ravel().copy(),
            frequencies=np.asarray(frequencies, dtype=np.float64).ravel().copy(),
            reward=float(reward),
            cost=float(cost),
            clock=float(clock),
            policy_version=str(policy_version),
        )
        with self._lock:
            self._buffer.append(record)
            if len(self._buffer) >= self.segment_records:
                self._flush_locked()

    def record_outcome(self, state: np.ndarray, frequencies: np.ndarray,
                       result: Any) -> None:
        """:class:`~repro.sim.system.FLSystem` ``outcome_hook`` adapter.

        ``result`` is the round's
        :class:`~repro.sim.iteration.IterationResult`; the recorded
        clock is the round's *start* time — the instant the state was
        observed and the action chosen.
        """
        self.append(
            np.asarray(state, dtype=np.float64).ravel(),
            frequencies,
            reward=float(result.reward),
            cost=float(result.cost),
            clock=float(result.start_time),
        )

    def record_served(self, payload: Dict[str, Any]) -> None:
        """:class:`~repro.serve.server.AllocationServer` outcome adapter.

        ``payload`` is a validated ``outcome`` request body (see
        :mod:`repro.serve.protocol`).
        """
        self.append(
            np.asarray(payload["state"], dtype=np.float64).ravel(),
            np.asarray(payload["frequencies"], dtype=np.float64).ravel(),
            reward=float(payload["reward"]),
            cost=float(payload.get("cost", -float(payload["reward"]))),
            clock=float(payload.get("clock", 0.0)),
            policy_version=str(payload.get("policy_version", "")),
        )

    def flush(self) -> None:
        """Write buffered records as one durable segment (no-op if empty)."""
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        records = self._buffer
        state: Dict[str, np.ndarray] = {
            "meta/schema": np.asarray(EXPERIENCE_SCHEMA_VERSION),
            "meta/seq": np.asarray(self._next_start),
            "states": np.stack([r.state for r in records]),
            "frequencies": np.stack([r.frequencies for r in records]),
            "rewards": np.asarray([r.reward for r in records], dtype=np.float64),
            "costs": np.asarray([r.cost for r in records], dtype=np.float64),
            "clocks": np.asarray([r.clock for r in records], dtype=np.float64),
            "versions": np.asarray([r.policy_version for r in records]),
        }
        path = os.path.join(self.directory, _segment_name(self._next_start))
        save_npz_state(path, state, keep=1, durable=self.durable)
        self._next_start += len(records)
        self._persisted += len(records)
        self._buffer = []
        self._rotate_locked()
        self._rewrite_index_locked()

    def _rotate_locked(self) -> None:
        paths = self.segment_paths()
        for path in paths[: max(0, len(paths) - self.keep_segments)]:
            arrays = load_npz_state(path, verify=False)
            self._persisted -= int(np.asarray(arrays["rewards"]).shape[0])
            os.remove(path)
            sidecar = path + CHECKSUM_SUFFIX
            if os.path.exists(sidecar):
                os.remove(sidecar)

    def _rewrite_index_locked(self) -> None:
        """Atomically rewrite ``index.jsonl`` from the live segment set."""
        lines = []
        for path in self.segment_paths():
            arrays = load_npz_state(path, verify=False)
            rewards = np.asarray(arrays["rewards"], dtype=np.float64)
            clocks = np.asarray(arrays["clocks"], dtype=np.float64)
            lines.append(
                json.dumps(
                    {
                        "schema": EXPERIENCE_SCHEMA_VERSION,
                        "segment": os.path.basename(path),
                        "start": int(np.asarray(arrays["meta/seq"])),
                        "records": int(rewards.shape[0]),
                        "clock_min": float(clocks.min()),
                        "clock_max": float(clocks.max()),
                        "mean_reward": float(rewards.mean()),
                    },
                    separators=(",", ":"),
                )
            )
        tmp = os.path.join(self.directory, INDEX_FILENAME + ".tmp")
        with open(tmp, "w") as fh:
            fh.write("\n".join(lines) + ("\n" if lines else ""))
        os.replace(tmp, os.path.join(self.directory, INDEX_FILENAME))

    # -- inspection ----------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return self._persisted + len(self._buffer)

    @property
    def n_segments(self) -> int:
        return len(self.segment_paths())

    def segment_paths(self) -> List[str]:
        """On-disk segment paths, oldest first."""
        names = sorted(
            n for n in os.listdir(self.directory) if SEGMENT_PATTERN.match(n)
        )
        return [os.path.join(self.directory, n) for n in names]

    def index(self) -> List[Dict[str, Any]]:
        """Parsed ``index.jsonl`` entries (empty before the first flush)."""
        path = os.path.join(self.directory, INDEX_FILENAME)
        if not os.path.exists(path):
            return []
        entries = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
        return entries

    # -- replay --------------------------------------------------------------
    def arrays(self, last_n: Optional[int] = None) -> Dict[str, np.ndarray]:
        """Stacked record columns (persisted + buffered), oldest first.

        ``last_n`` keeps only the most recent records — the retraining
        window.  ``versions`` is a unicode array; everything else is
        float64.

        The whole read runs under the store lock: a concurrent append
        could otherwise flush the buffer into a new segment between the
        segment walk and the buffer snapshot, duplicating (or hiding)
        the records in flight.
        """
        with self._lock:
            return self._arrays_locked(last_n)

    def _arrays_locked(self, last_n: Optional[int]) -> Dict[str, np.ndarray]:
        states: List[np.ndarray] = []
        freqs: List[np.ndarray] = []
        rewards: List[np.ndarray] = []
        costs: List[np.ndarray] = []
        clocks: List[np.ndarray] = []
        versions: List[np.ndarray] = []
        for path in self.segment_paths():
            seg = load_npz_state(path, verify=False)
            states.append(np.asarray(seg["states"], dtype=np.float64))
            freqs.append(np.asarray(seg["frequencies"], dtype=np.float64))
            rewards.append(np.asarray(seg["rewards"], dtype=np.float64))
            costs.append(np.asarray(seg["costs"], dtype=np.float64))
            clocks.append(np.asarray(seg["clocks"], dtype=np.float64))
            versions.append(np.asarray(seg["versions"]).astype(str))
        if self._buffer:
            states.append(np.stack([r.state for r in self._buffer]))
            freqs.append(np.stack([r.frequencies for r in self._buffer]))
            rewards.append(
                np.asarray([r.reward for r in self._buffer], dtype=np.float64)
            )
            costs.append(
                np.asarray([r.cost for r in self._buffer], dtype=np.float64)
            )
            clocks.append(
                np.asarray([r.clock for r in self._buffer], dtype=np.float64)
            )
            versions.append(
                np.asarray([r.policy_version for r in self._buffer]).astype(str)
            )
        if not rewards:
            raise ValueError(f"experience store {self.directory!r} is empty")
        out = {
            "states": np.concatenate(states),
            "frequencies": np.concatenate(freqs),
            "rewards": np.concatenate(rewards),
            "costs": np.concatenate(costs),
            "clocks": np.concatenate(clocks),
            "versions": np.concatenate(versions),
        }
        if last_n is not None and last_n > 0:
            out = {k: v[-last_n:] for k, v in out.items()}
        return out

    def records(self, last_n: Optional[int] = None) -> List[ExperienceRecord]:
        """Recent records as objects (convenience over :meth:`arrays`)."""
        arr = self.arrays(last_n)
        return [
            ExperienceRecord(
                state=arr["states"][i],
                frequencies=arr["frequencies"][i],
                reward=float(arr["rewards"][i]),
                cost=float(arr["costs"][i]),
                clock=float(arr["clocks"][i]),
                policy_version=str(arr["versions"][i]),
            )
            for i in range(arr["rewards"].shape[0])
        ]

    def to_rollout_buffer(self, last_n: Optional[int] = None) -> RolloutBuffer:
        """Replay recent experience into a filled RolloutBuffer.

        Consecutive records form ``(s_k, a_k, r_k, s_{k+1})`` transitions
        (the last record has no successor and is dropped).  Actions are
        the served *frequencies*; log-probs/values are zero — the buffer
        is a replay structure, not an on-policy PPO batch.
        """
        arr = self.arrays(last_n)
        n = int(arr["rewards"].shape[0])
        if n < 2:
            raise ValueError("need at least 2 records to form a transition")
        buffer = RolloutBuffer(
            n - 1, int(arr["states"].shape[1]), int(arr["frequencies"].shape[1])
        )
        for i in range(n - 1):
            buffer.add(
                arr["states"][i],
                arr["frequencies"][i],
                float(arr["rewards"][i]),
                arr["states"][i + 1],
                False,
                0.0,
                0.0,
            )
        return buffer

    def bandwidth_traces(
        self,
        history_slots: int,
        slot_duration: float = 1.0,
        last_n: Optional[int] = None,
    ) -> List[BandwidthTrace]:
        """Reconstruct per-device bandwidth traces from recorded states.

        Each state reshapes to the paper's (N, H+1) history matrix with
        the *newest* slot in column 0.  The first record contributes its
        full window (reversed into chronological order); every later
        record contributes its newest slot.  The result approximates the
        bandwidth series the devices actually experienced while the
        incumbent served — the world the retrainer should learn.
        """
        if history_slots < 0:
            raise ValueError("history_slots must be non-negative")
        arr = self.arrays(last_n)
        states = arr["states"]
        width = history_slots + 1
        if states.shape[1] % width != 0:
            raise ValueError(
                f"state dim {states.shape[1]} is not divisible by "
                f"history width {width}"
            )
        n_devices = states.shape[1] // width
        mats = states.reshape(states.shape[0], n_devices, width)
        first = mats[0, :, ::-1]  # oldest -> newest
        values = (
            np.concatenate([first, mats[1:, :, 0].T], axis=1)
            if mats.shape[0] > 1
            else first
        )
        return [
            BandwidthTrace(values[i], slot_duration, name=f"replay-{i}")
            for i in range(n_devices)
        ]
