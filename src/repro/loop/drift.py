"""Streaming drift detection over served experience.

The network bandwidth process is non-stationary (the paper's whole
motivation for learning from experience); a policy frozen at export time
slowly goes stale as the distribution walks away from what it trained
on.  :class:`DriftDetector` watches the live per-round bandwidth and
reward stream with two classic streaming statistics:

* **Welford moments** (:class:`~repro.utils.stats.RunningStat`) for the
  live mean/variance, compared against a :class:`DriftBaseline` frozen
  at training/warmup time;
* a two-sided **Page–Hinkley** test on the baseline-normalized deviation
  — the cumulative sum of ``z_t ∓ delta`` minus its running extremum —
  which fires when the stream shifts persistently in either direction
  rather than on single outliers.

On trigger the detector emits a ``loop`` telemetry event
(``kind="drift"``) and returns a :class:`DriftReport`; the
:class:`~repro.loop.controller.LoopController` treats that as the
retrain signal.

:func:`inject_step_drift` is the seeded test/benchmark companion: it
deterministically collapses (or boosts) every trace's bandwidth after a
given slot, modelling the abrupt regime change the loop must survive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.obs import get_telemetry
from repro.traces.base import BandwidthTrace
from repro.utils.stats import RunningStat

_EPS = 1e-8


@dataclass(frozen=True)
class DriftBaseline:
    """Reference moments frozen when the serving policy was trained."""

    bandwidth_mean: float
    bandwidth_std: float
    reward_mean: float
    reward_std: float
    n_samples: int

    @classmethod
    def from_samples(
        cls, bandwidths: Sequence[float], rewards: Sequence[float]
    ) -> "DriftBaseline":
        """Freeze a baseline from warmup-window samples."""
        bw = np.asarray(bandwidths, dtype=np.float64)
        rw = np.asarray(rewards, dtype=np.float64)
        if bw.size < 2 or rw.size < 2:
            raise ValueError("need at least 2 samples per stream for a baseline")
        return cls(
            bandwidth_mean=float(bw.mean()),
            bandwidth_std=float(max(bw.std(), _EPS)),
            reward_mean=float(rw.mean()),
            reward_std=float(max(rw.std(), _EPS)),
            n_samples=int(bw.size),
        )


@dataclass(frozen=True)
class DriftReport:
    """Why the detector fired: which stream, how far, on how much data."""

    kind: str  # "bandwidth" | "reward"
    statistic: float
    threshold: float
    n_samples: int
    live_mean: float
    baseline_mean: float


class PageHinkley:
    """Two-sided Page–Hinkley change detector on a scalar stream.

    ``update(x)`` accumulates ``x - delta`` (and ``x + delta``) and
    tracks the gap to the running minimum (maximum); a gap above
    ``threshold`` after ``min_samples`` observations signals a
    persistent upward (downward) mean shift.  ``delta`` is the
    magnitude of drift tolerated without firing.
    """

    def __init__(
        self, delta: float = 0.5, threshold: float = 10.0, min_samples: int = 16
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.reset()

    def reset(self) -> None:
        self.n = 0
        self._cum_up = 0.0
        self._min_up = 0.0
        self._cum_down = 0.0
        self._max_down = 0.0

    @property
    def statistic(self) -> float:
        """The larger of the two one-sided gap statistics."""
        return max(self._cum_up - self._min_up, self._max_down - self._cum_down)

    def update(self, x: float) -> bool:
        """Feed one observation; True when a shift is detected."""
        x = float(x)
        self.n += 1
        self._cum_up += x - self.delta
        self._min_up = min(self._min_up, self._cum_up)
        self._cum_down += x + self.delta
        self._max_down = max(self._max_down, self._cum_down)
        return self.n >= self.min_samples and self.statistic > self.threshold


class DriftDetector:
    """Compares the live bandwidth/reward streams against a baseline.

    Each :meth:`update` takes one round's per-device bandwidth vector
    and realized reward, normalizes both stream means against the
    frozen baseline and feeds the z-scores to per-stream Page–Hinkley
    tests.  The first stream to fire produces the :class:`DriftReport`
    (bandwidth checked first: it is the cause, reward the symptom).
    """

    def __init__(
        self,
        baseline: DriftBaseline,
        delta: float = 0.5,
        threshold: float = 10.0,
        min_samples: int = 16,
    ) -> None:
        self.baseline = baseline
        self._config = (float(delta), float(threshold), int(min_samples))
        self._bw_ph = PageHinkley(delta, threshold, min_samples)
        self._rw_ph = PageHinkley(delta, threshold, min_samples)
        self._bw_live = RunningStat()
        self._rw_live = RunningStat()

    @property
    def n_samples(self) -> int:
        return int(self._bw_live.n)

    def rebaseline(self, baseline: DriftBaseline) -> None:
        """Swap in a fresh baseline (post-publish) and reset the tests."""
        delta, threshold, min_samples = self._config
        self.baseline = baseline
        self._bw_ph = PageHinkley(delta, threshold, min_samples)
        self._rw_ph = PageHinkley(delta, threshold, min_samples)
        self._bw_live = RunningStat()
        self._rw_live = RunningStat()

    def update(
        self, bandwidths: np.ndarray, reward: float
    ) -> Optional[DriftReport]:
        """One round's observation; a report when drift is detected."""
        bw = float(np.asarray(bandwidths, dtype=np.float64).mean())
        rw = float(reward)
        self._bw_live.push(bw)
        self._rw_live.push(rw)
        base = self.baseline
        z_bw = (bw - base.bandwidth_mean) / max(base.bandwidth_std, _EPS)
        z_rw = (rw - base.reward_mean) / max(base.reward_std, _EPS)
        report: Optional[DriftReport] = None
        bw_hit = self._bw_ph.update(z_bw)
        rw_hit = self._rw_ph.update(z_rw)
        if bw_hit:
            report = DriftReport(
                kind="bandwidth",
                statistic=float(self._bw_ph.statistic),
                threshold=self._bw_ph.threshold,
                n_samples=self.n_samples,
                live_mean=float(self._bw_live.mean),
                baseline_mean=base.bandwidth_mean,
            )
        elif rw_hit:
            report = DriftReport(
                kind="reward",
                statistic=float(self._rw_ph.statistic),
                threshold=self._rw_ph.threshold,
                n_samples=self.n_samples,
                live_mean=float(self._rw_live.mean),
                baseline_mean=base.reward_mean,
            )
        if report is not None:
            tel = get_telemetry()
            if tel.enabled:
                tel.on_loop(
                    "drift",
                    stream=report.kind,
                    statistic=round(report.statistic, 4),
                    threshold=report.threshold,
                    n_samples=report.n_samples,
                    live_mean=round(report.live_mean, 6),
                    baseline_mean=round(report.baseline_mean, 6),
                )
        return report


def inject_step_drift(
    traces: Sequence[BandwidthTrace], factor: float, at_slot: int
) -> List[BandwidthTrace]:
    """Scale every trace's bandwidth by ``factor`` from ``at_slot`` on.

    A deterministic (RNG-free) regime change: the pre-drift segment is
    untouched, everything after collapses (``factor < 1``) or surges
    (``factor > 1``).  Traces are cyclic, so pick ``at_slot`` well
    inside the horizon and keep runs short enough not to wrap.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    out: List[BandwidthTrace] = []
    for trace in traces:
        if not 0 <= at_slot < trace.n_slots:
            raise ValueError(
                f"at_slot {at_slot} outside trace horizon {trace.n_slots}"
            )
        values = trace.values.copy()
        values[at_slot:] = values[at_slot:] * float(factor)
        out.append(
            BandwidthTrace(values, trace.h, name=f"{trace.name}+drift")
        )
    return out
