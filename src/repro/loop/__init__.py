"""Closed-loop policy lifecycle: experience → drift → retrain → canary.

The serve stack (:mod:`repro.serve`) answers "allocate now" with a
frozen artifact; this package closes Algorithm 1's outer loop around it.
Served outcomes land in a durable :class:`ExperienceStore`; a streaming
:class:`DriftDetector` notices when the live bandwidth/reward
distribution walks away from the incumbent's training regime; a
:class:`Retrainer` warm-starts PPO on traces reconstructed from that
very experience; and a :class:`CanaryGate` shadow-evaluates the
candidate, publishing it for hot reload only on a statistically
significant cost improvement — with automatic rollback if the publish
regresses in production.  :class:`LoopController` sequences the whole
lifecycle; ``repro loop run`` / ``repro loop status`` drive it from the
CLI.  See ``docs/loop.md``.
"""

from repro.loop.canary import (
    CanaryConfig,
    CanaryGate,
    GateDecision,
    ShadowEval,
    SystemFactory,
    registry_state_digests,
    shadow_evaluate,
)
from repro.loop.controller import (
    CANARY,
    MONITORING,
    RETRAINING,
    STATUS_FILENAME,
    WATCHING,
    LoopConfig,
    LoopController,
    read_status,
)
from repro.loop.drift import (
    DriftBaseline,
    DriftDetector,
    DriftReport,
    PageHinkley,
    inject_step_drift,
)
from repro.loop.experience import (
    EXPERIENCE_SCHEMA_VERSION,
    ExperienceRecord,
    ExperienceStore,
)
from repro.loop.retrain import (
    RetrainConfig,
    RetrainError,
    Retrainer,
    RetrainResult,
    SubprocessRetrainer,
)

__all__ = [
    "CANARY",
    "EXPERIENCE_SCHEMA_VERSION",
    "MONITORING",
    "RETRAINING",
    "STATUS_FILENAME",
    "WATCHING",
    "CanaryConfig",
    "CanaryGate",
    "DriftBaseline",
    "DriftDetector",
    "DriftReport",
    "ExperienceRecord",
    "ExperienceStore",
    "GateDecision",
    "LoopConfig",
    "LoopController",
    "PageHinkley",
    "RetrainConfig",
    "RetrainError",
    "Retrainer",
    "RetrainResult",
    "ShadowEval",
    "SubprocessRetrainer",
    "SystemFactory",
    "inject_step_drift",
    "read_status",
    "registry_state_digests",
    "shadow_evaluate",
]
