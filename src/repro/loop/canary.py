"""Canary gating: shadow-evaluate, publish on significance, roll back.

A retrained candidate never serves directly.  The gate first
shadow-evaluates candidate vs. incumbent offline — both replayed as
frozen :class:`~repro.core.drl_allocator.DRLAllocator` artifacts over
the *same* deterministic systems (typically a replay of recent served
experience plus a seeded drifting-trace preset), so the comparison is
paired round-by-round.  Publication requires a statistically
significant mean-cost improvement (one-sided paired t-test,
:func:`scipy.stats.ttest_rel`) on the pooled rounds; anything less is
rejected and the incumbent keeps serving untouched.

Publishing is the registry's own durable path: the candidate's state is
re-saved into the registry directory as the next lexicographic version
(``policy-vNNNN.policy.npz``, fsync + sha256 sidecar) and the registry
hot-reloads — load-validate-swap, so a corrupt candidate can never
replace a serving policy.  :meth:`CanaryGate.rollback` re-publishes the
incumbent's weights as a *newer* version (registries serve newest-last;
history is append-only) when the post-publish watch window shows the
candidate regressing in production.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from repro.core.drl_allocator import DRLAllocator
from repro.obs import get_telemetry
from repro.serve.artifact import PolicyArtifact
from repro.serve.registry import PolicyHandle, PolicyRegistry
from repro.sim.system import FLSystem
from repro.utils.serialization import load_npz_state, save_npz_state

#: ``policy-v0007.policy.npz`` -> 7; used to pick the next version name.
_VERSION_PATTERN = re.compile(r"policy-v(\d+)")

#: A zero-argument factory producing a fresh, reset system for one
#: shadow run.  Called once per artifact per named evaluation, so both
#: sides see bit-identical initial conditions.
SystemFactory = Callable[[], FLSystem]


@dataclass
class CanaryConfig:
    """Gate thresholds and the post-publish watch window."""

    #: Shadow rounds per named evaluation system.
    iterations: int = 40
    #: One-sided significance level the improvement must clear.
    significance: float = 0.05
    #: Required relative mean-cost improvement (0 = any improvement).
    min_relative_improvement: float = 0.0
    #: Served rounds watched after a publish before it is final.
    watch_rounds: int = 16
    #: Fractional served-cost regression (vs. the canary's estimate of
    #: the candidate) tolerated before automatic rollback.
    rollback_tolerance: float = 0.25

    def validate(self) -> "CanaryConfig":
        if self.iterations < 2:
            raise ValueError("iterations must be at least 2")
        if not 0 < self.significance < 1:
            raise ValueError("significance must be in (0, 1)")
        if self.min_relative_improvement < 0:
            raise ValueError("min_relative_improvement must be non-negative")
        if self.watch_rounds < 1:
            raise ValueError("watch_rounds must be at least 1")
        if self.rollback_tolerance < 0:
            raise ValueError("rollback_tolerance must be non-negative")
        return self


@dataclass(frozen=True)
class ShadowEval:
    """Paired per-round costs of one named evaluation system."""

    name: str
    incumbent_costs: np.ndarray
    candidate_costs: np.ndarray

    @property
    def incumbent_mean(self) -> float:
        return float(self.incumbent_costs.mean())

    @property
    def candidate_mean(self) -> float:
        return float(self.candidate_costs.mean())


@dataclass(frozen=True)
class GateDecision:
    """The gate's verdict plus everything needed to audit it."""

    accepted: bool
    reason: str
    p_value: float
    #: Relative mean-cost improvement, pooled over evaluations
    #: (positive = candidate cheaper).
    improvement: float
    #: The canary's estimate of the candidate's mean served cost —
    #: the reference the post-publish watch compares against.
    expected_cost: float
    evals: Tuple[ShadowEval, ...]
    published_version: Optional[str] = None


def shadow_evaluate(
    incumbent: PolicyArtifact,
    candidate: PolicyArtifact,
    factory: SystemFactory,
    iterations: int,
    name: str = "replay",
) -> ShadowEval:
    """Run both artifacts over identical fresh systems; paired costs."""
    if iterations < 1:
        raise ValueError("iterations must be positive")
    costs = []
    for artifact in (incumbent, candidate):
        system = factory()
        results = system.run(DRLAllocator.from_artifact(artifact), iterations)
        costs.append(np.asarray([r.cost for r in results], dtype=np.float64))
    return ShadowEval(name=name, incumbent_costs=costs[0], candidate_costs=costs[1])


def _paired_one_sided_p(incumbent: np.ndarray, candidate: np.ndarray) -> float:
    """P(candidate is NOT cheaper) via a paired t-test on cost pairs.

    A degenerate all-equal diff (t undefined) returns 1.0 — no evidence
    of improvement, so the gate rejects.
    """
    diff = incumbent - candidate
    if float(diff.std(ddof=1)) == 0.0:
        return 0.0 if float(diff.mean()) > 0 else 1.0
    t_stat, p_two = _scipy_stats.ttest_rel(incumbent, candidate)
    if not np.isfinite(t_stat):
        return 1.0
    p_one = p_two / 2.0 if t_stat > 0 else 1.0 - p_two / 2.0
    return float(p_one)


class CanaryGate:
    """Decides whether a candidate artifact may serve, and undoes it.

    ``registry.path`` must be a *directory* of versioned artifacts —
    publication appends the next lexicographic version and hot-reloads.
    """

    def __init__(
        self, registry: PolicyRegistry, config: Optional[CanaryConfig] = None
    ) -> None:
        if not os.path.isdir(registry.path):
            raise ValueError(
                f"canary publishing needs a registry directory, got "
                f"{registry.path!r}"
            )
        self.registry = registry
        self.config = (config or CanaryConfig()).validate()

    # -- evaluation ----------------------------------------------------------
    def evaluate(
        self,
        incumbent: PolicyArtifact,
        candidate: PolicyArtifact,
        factories: Mapping[str, SystemFactory],
    ) -> GateDecision:
        """Shadow-run both policies on every named system; no publish."""
        if not factories:
            raise ValueError("need at least one evaluation system factory")
        cfg = self.config
        evals = tuple(
            shadow_evaluate(incumbent, candidate, factory, cfg.iterations, name)
            for name, factory in sorted(factories.items())
        )
        inc = np.concatenate([e.incumbent_costs for e in evals])
        cand = np.concatenate([e.candidate_costs for e in evals])
        improvement = float((inc.mean() - cand.mean()) / max(abs(inc.mean()), 1e-12))
        p_value = _paired_one_sided_p(inc, cand)
        if improvement <= cfg.min_relative_improvement:
            reason = (
                f"improvement {improvement:.2%} <= required "
                f"{cfg.min_relative_improvement:.2%}"
            )
            accepted = False
        elif p_value >= cfg.significance:
            reason = (
                f"not significant (p={p_value:.3g} >= {cfg.significance:g})"
            )
            accepted = False
        else:
            reason = (
                f"candidate improves mean cost by {improvement:.2%} "
                f"(p={p_value:.3g})"
            )
            accepted = True
        return GateDecision(
            accepted=accepted,
            reason=reason,
            p_value=p_value,
            improvement=improvement,
            expected_cost=float(cand.mean()),
            evals=evals,
        )

    def consider(
        self,
        candidate_path: str,
        factories: Mapping[str, SystemFactory],
    ) -> GateDecision:
        """Evaluate a candidate file against the live incumbent; publish
        (and hot-reload) only on an accepted decision."""
        incumbent = self.registry.current
        candidate = PolicyArtifact.load(candidate_path)
        decision = self.evaluate(incumbent.artifact, candidate, factories)
        tel = get_telemetry()
        if tel.enabled:
            tel.on_loop(
                "canary",
                accepted=decision.accepted,
                improvement=round(decision.improvement, 6),
                p_value=round(decision.p_value, 6),
                expected_cost=round(decision.expected_cost, 6),
                incumbent=incumbent.version,
            )
        if not decision.accepted:
            if tel.enabled:
                tel.on_loop("reject", reason=decision.reason)
            return decision
        handle = self.publish(candidate_path)
        if tel.enabled:
            tel.on_loop(
                "publish", version=handle.version, reason=decision.reason
            )
        return GateDecision(
            accepted=True,
            reason=decision.reason,
            p_value=decision.p_value,
            improvement=decision.improvement,
            expected_cost=decision.expected_cost,
            evals=decision.evals,
            published_version=handle.version,
        )

    # -- publication ---------------------------------------------------------
    def next_version_name(self) -> str:
        """The next lexicographic artifact name in the registry dir."""
        numbers = [0]
        for path in self.registry.candidates():
            match = _VERSION_PATTERN.search(os.path.basename(path))
            if match:
                numbers.append(int(match.group(1)))
        return f"policy-v{max(numbers) + 1:04d}.policy.npz"

    def publish(self, artifact_path: str) -> PolicyHandle:
        """Durably copy an artifact in as the next version and reload."""
        state = load_npz_state(artifact_path)
        target = os.path.join(self.registry.path, self.next_version_name())
        save_npz_state(target, state, keep=1, durable=True)
        return self.registry.reload()

    def rollback(self, incumbent: PolicyHandle) -> PolicyHandle:
        """Re-publish the incumbent's weights as the newest version.

        Registries serve newest-last, so undoing a bad publish means
        appending a fresh copy of the old weights — never deleting the
        bad version (the audit trail stays intact).
        """
        handle = self.publish(incumbent.path)
        tel = get_telemetry()
        if tel.enabled:
            tel.on_loop(
                "rollback",
                restored=incumbent.version,
                serving=handle.version,
            )
        return handle

    def should_rollback(
        self, decision: GateDecision, served_costs: np.ndarray
    ) -> bool:
        """Did the published candidate regress past the tolerance?

        ``served_costs`` are the post-publish watch-window round costs;
        they are compared against the canary's own estimate of the
        candidate's mean cost.
        """
        served = np.asarray(served_costs, dtype=np.float64)
        if served.size == 0:
            return False
        limit = decision.expected_cost * (1.0 + self.config.rollback_tolerance)
        return bool(served.mean() > limit)


def registry_state_digests(registry: PolicyRegistry) -> Dict[str, str]:
    """Map of candidate basename -> content digest (audit helper)."""
    out: Dict[str, str] = {}
    for path in registry.candidates():
        artifact = PolicyArtifact.load(path)
        out[os.path.basename(path)] = artifact.digest
    return out
