"""DVFS energy model of Burd & Brodersen (Eq. 6 of the paper).

Units used throughout the repository:

* CPU-cycle frequency ``delta``: GHz (= 1e9 cycles/s);
* cycle counts: Gcycles (so ``time = Gcycles / GHz`` is in seconds);
* effective capacitance ``alpha``: energy-units per Gcycle per GHz^2;
* energy: abstract "energy units" calibrated so one full-speed testbed
  iteration costs ~0.5 units per device (matching Fig. 7(c,f) scales).
"""

from __future__ import annotations

import numpy as np


def cycle_budget(tau: int, cycles_per_mbit: float, data_mbit: float) -> float:
    """Total training cycles per iteration: ``tau * c_i * D_i`` (Gcycles).

    ``cycles_per_mbit`` is ``c_i`` expressed in Gcycles/Mbit, which equals
    cycles/bit numerically times 1e-3 (1 Gcycle/Mbit = 1000 cycles/bit).
    """
    if tau <= 0:
        raise ValueError("tau must be a positive number of local passes")
    if cycles_per_mbit <= 0 or data_mbit <= 0:
        raise ValueError("cycles_per_mbit and data_mbit must be positive")
    return float(tau) * float(cycles_per_mbit) * float(data_mbit)


def compute_energy(
    alpha: float,
    cycles_per_mbit: float,
    data_mbit: float,
    frequency_ghz,
    tau: int = 1,
    include_tau: bool = False,
) -> np.ndarray:
    """Computation energy ``alpha * c_i * D_i * delta^2`` (Eq. 6, first term).

    The paper's Eq. (6) omits ``tau`` from the energy term even though the
    compute-time Eq. (1) includes it; with the paper's implicit tau=1 the
    two conventions coincide.  Set ``include_tau=True`` to scale energy
    with the number of local passes.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    freq = np.asarray(frequency_ghz, dtype=np.float64)
    if np.any(freq < 0):
        raise ValueError("frequency must be non-negative")
    scale = float(tau) if include_tau else 1.0
    return alpha * cycles_per_mbit * data_mbit * scale * freq**2


def transmission_energy(e_unit: float, t_com: float) -> float:
    """Communication energy ``e_i * t_com`` (Eq. 6, second term)."""
    if e_unit < 0 or t_com < 0:
        raise ValueError("e_unit and t_com must be non-negative")
    return float(e_unit * t_com)


def frequency_for_deadline(
    cycles_gc: float, compute_budget_s, max_frequency_ghz: float
) -> np.ndarray:
    """Lowest frequency finishing ``cycles_gc`` within ``compute_budget_s``.

    Returns the clamped frequency ``min(max_f, cycles/budget)``; a budget
    of zero or less yields ``max_frequency_ghz`` (the device cannot meet
    the deadline and simply runs flat out).
    """
    if cycles_gc <= 0:
        raise ValueError("cycles_gc must be positive")
    if max_frequency_ghz <= 0:
        raise ValueError("max_frequency_ghz must be positive")
    budget = np.asarray(compute_budget_s, dtype=np.float64)
    with np.errstate(divide="ignore"):
        needed = np.where(budget > 0, cycles_gc / np.maximum(budget, 1e-12), np.inf)
    return np.minimum(needed, max_frequency_ghz)
