"""Mobile device models: compute timing (Eq. 1), DVFS energy (Eq. 6) and
the fleet sampler implementing the paper's Section V parameter ranges."""

from repro.devices.device import DeviceParams, MobileDevice
from repro.devices.fleet import DeviceFleet, FleetConfig, sample_fleet
from repro.devices.energy import (
    compute_energy,
    cycle_budget,
    frequency_for_deadline,
    transmission_energy,
)

__all__ = [
    "DeviceParams",
    "MobileDevice",
    "DeviceFleet",
    "FleetConfig",
    "sample_fleet",
    "compute_energy",
    "transmission_energy",
    "cycle_budget",
    "frequency_for_deadline",
]
