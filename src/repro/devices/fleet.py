"""Fleet sampling per the paper's Section V experimental settings.

"We set the size of training data held by mobile device as a uniform
distribution within 50-100 MB.  The number of CPU cycles used for
training a single data sample ... is uniformly distributed within 10-30
cycles/bit.  The maximum CPU-cycle frequency ... is uniformly distributed
within 1.0-2.0 GHz."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.device import (
    CYCLES_PER_BIT_TO_GC_PER_MBIT,
    MB_TO_MBIT,
    DeviceParams,
    MobileDevice,
)
from repro.traces.base import BandwidthTrace, TracePool
from repro.traces.kernel import FleetTraceKernel
from repro.utils.rng import SeedLike, as_generator


@dataclass
class FleetConfig:
    """Sampling ranges for device parameters (paper Section V defaults)."""

    n_devices: int = 3
    data_mb_range: Tuple[float, float] = (50.0, 100.0)
    cycles_per_bit_range: Tuple[float, float] = (10.0, 30.0)
    max_freq_ghz_range: Tuple[float, float] = (1.0, 2.0)
    #: Effective capacitance (energy units / Gcycle / GHz^2).  Calibrated
    #: so the testbed's per-iteration total energy lands in the Fig.
    #: 7(c,f) band (~1.5 units for an energy-aware allocator).
    alpha: float = 0.05
    #: Transmission power (energy units per second of upload).
    e_tx_range: Tuple[float, float] = (0.005, 0.016)
    tau: int = 1

    def validate(self) -> "FleetConfig":
        if self.n_devices <= 0:
            raise ValueError("n_devices must be positive")
        for name in ("data_mb_range", "cycles_per_bit_range", "max_freq_ghz_range", "e_tx_range"):
            lo, hi = getattr(self, name)
            if not (0 < lo <= hi):
                raise ValueError(f"{name} must satisfy 0 < lo <= hi, got ({lo}, {hi})")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        return self


def sample_fleet(
    config: FleetConfig,
    traces: Sequence[BandwidthTrace],
    rng: SeedLike = None,
) -> "DeviceFleet":
    """Sample device parameters and pair them with the given traces."""
    config.validate()
    if len(traces) != config.n_devices:
        raise ValueError(
            f"need one trace per device: {config.n_devices} devices, {len(traces)} traces"
        )
    rng = as_generator(rng)
    devices: List[MobileDevice] = []
    for i in range(config.n_devices):
        params = DeviceParams(
            data_mbit=rng.uniform(*config.data_mb_range) * MB_TO_MBIT,
            cycles_per_mbit=rng.uniform(*config.cycles_per_bit_range)
            * CYCLES_PER_BIT_TO_GC_PER_MBIT,
            max_frequency_ghz=rng.uniform(*config.max_freq_ghz_range),
            alpha=config.alpha,
            e_tx=rng.uniform(*config.e_tx_range),
            tau=config.tau,
        )
        devices.append(MobileDevice(params, traces[i], device_id=i))
    return DeviceFleet(devices)


class DeviceFleet:
    """An ordered collection of :class:`MobileDevice` with vector views.

    The vector properties (``max_frequencies``, ``cycle_budgets``, ...)
    let the simulator and baselines operate on whole-fleet numpy arrays
    instead of per-device Python loops.
    """

    def __init__(self, devices: Sequence[MobileDevice]):
        devices = list(devices)
        if not devices:
            raise ValueError("fleet must contain at least one device")
        self.devices = devices
        self._max_freq = np.array(
            [d.params.max_frequency_ghz for d in devices], dtype=np.float64
        )
        self._cycles = np.array(
            [d.params.cycles_total_gc for d in devices], dtype=np.float64
        )
        self._alpha_cd = np.array(
            [
                d.params.alpha * d.params.cycles_per_mbit * d.params.data_mbit
                for d in devices
            ],
            dtype=np.float64,
        )
        self._e_tx = np.array([d.params.e_tx for d in devices], dtype=np.float64)
        self._p_idle = np.array([d.params.p_idle for d in devices], dtype=np.float64)
        self._has_idle_power = bool(self._p_idle.any())
        # Vectorized whole-fleet trace kernel, built on first use (traces
        # are immutable; trace swaps go through with_traces -> new fleet).
        self._trace_kernel: Optional[FleetTraceKernel] = None

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self):
        return iter(self.devices)

    def __getitem__(self, i: int) -> MobileDevice:
        return self.devices[i]

    @property
    def n(self) -> int:
        return len(self.devices)

    @property
    def max_frequencies(self) -> np.ndarray:
        """delta_i^max vector (GHz)."""
        return self._max_freq

    @property
    def cycle_budgets(self) -> np.ndarray:
        """tau c_i D_i vector (Gcycles) — numerator of Eq. (1)."""
        return self._cycles

    @property
    def energy_coefficients(self) -> np.ndarray:
        """alpha_i c_i D_i vector — coefficient of delta^2 in Eq. (6)."""
        return self._alpha_cd

    @property
    def tx_powers(self) -> np.ndarray:
        """e_i vector (energy units / s)."""
        return self._e_tx

    @property
    def idle_powers(self) -> np.ndarray:
        """p_idle vector (energy units / s of barrier wait); zeros in the
        paper-faithful configuration."""
        return self._p_idle

    @property
    def has_idle_power(self) -> bool:
        """Whether any device draws idle power (lets the simulator skip
        the Eq. (6) idle term in the paper-faithful all-zero case)."""
        return self._has_idle_power

    @property
    def trace_kernel(self) -> FleetTraceKernel:
        """Lazily built vectorized trace kernel over the fleet's traces.

        Answers Eq. (2)-(3) upload times and bandwidth histories for the
        whole fleet in one call, bit-identical to the per-device scalar
        methods (see :class:`repro.traces.kernel.FleetTraceKernel`).
        """
        kernel = self._trace_kernel
        if kernel is None:
            kernel = FleetTraceKernel([d.trace for d in self.devices])
            self._trace_kernel = kernel
        return kernel

    def clamp_frequencies(self, freqs, floor_frac: float = 0.02) -> np.ndarray:
        """Elementwise clamp into ``(0, delta_max]`` (vectorized)."""
        freqs = np.asarray(freqs, dtype=np.float64)
        if freqs.shape != (self.n,):
            raise ValueError(f"expected {self.n} frequencies, got shape {freqs.shape}")
        lo = floor_frac * self._max_freq
        return np.clip(freqs, lo, self._max_freq)

    def compute_times(self, freqs) -> np.ndarray:
        """Vectorized Eq. (1) across the fleet."""
        freqs = np.asarray(freqs, dtype=np.float64)
        if np.any(freqs <= 0):
            raise ValueError("all frequencies must be positive")
        return self._cycles / np.minimum(freqs, self._max_freq)

    def compute_energies(self, freqs) -> np.ndarray:
        """Vectorized first term of Eq. (6)."""
        freqs = np.minimum(np.asarray(freqs, dtype=np.float64), self._max_freq)
        return self._alpha_cd * freqs**2

    def with_traces(self, traces: Sequence[BandwidthTrace]) -> "DeviceFleet":
        if len(traces) != self.n:
            raise ValueError("need one trace per device")
        return DeviceFleet(
            [d.with_trace(t) for d, t in zip(self.devices, traces)]
        )

    @classmethod
    def from_pool(
        cls,
        config: FleetConfig,
        pool: TracePool,
        rng: SeedLike = None,
    ) -> "DeviceFleet":
        """Sample a fleet whose traces are drawn from ``pool``.

        Reproduces the paper's 50-device setup: each device randomly
        selects one of the pool's (five) walking traces.
        """
        rng = as_generator(rng)
        traces = pool.assign(config.n_devices, rng=rng)
        return sample_fleet(config, traces, rng=rng)
