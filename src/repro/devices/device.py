"""Mobile device model (Table I / Eqs. 1, 6 of the paper).

Unit conventions (see also :mod:`repro.devices.energy`):

* data size ``D_i``: Mbit;
* ``c_i``: Gcycles per Mbit (numerically: cycles/bit * 1e-3);
* frequency ``delta``: GHz, so compute time ``tau c_i D_i / delta`` is in
  seconds;
* ``alpha_i``: energy-units per Gcycle per GHz^2;
* ``e_i``: energy-units per second of transmission.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.devices.energy import compute_energy, cycle_budget, transmission_energy
from repro.traces.base import BandwidthTrace

#: Conversion: cycles/bit -> Gcycles/Mbit.
CYCLES_PER_BIT_TO_GC_PER_MBIT = 1e-3
#: Conversion: megabytes -> Mbit.
MB_TO_MBIT = 8.0


@dataclass(frozen=True)
class DeviceParams:
    """Static parameters of one mobile device (Table I)."""

    #: Local dataset size D_i (Mbit).
    data_mbit: float
    #: Cycles to train one unit of data, c_i (Gcycles/Mbit).
    cycles_per_mbit: float
    #: Maximum CPU-cycle frequency delta_i^max (GHz).
    max_frequency_ghz: float
    #: Effective capacitance coefficient alpha_i (energy/Gcycle/GHz^2).
    alpha: float
    #: Transmission energy rate e_i (energy units per second).
    e_tx: float = 0.02
    #: Number of local training passes per iteration (tau).
    tau: int = 1
    #: Whether energy scales with tau (Eq. 6 as printed omits tau).
    include_tau_in_energy: bool = False
    #: Idle power draw (energy units per second spent waiting for the
    #: iteration barrier).  The paper's Eq. (6) neglects idle energy;
    #: the default 0 is paper-faithful.  A positive value makes idle time
    #: itself costly, further rewarding DVFS (see the idle-power test).
    p_idle: float = 0.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "DeviceParams":
        if self.data_mbit <= 0:
            raise ValueError("data_mbit must be positive")
        if self.cycles_per_mbit <= 0:
            raise ValueError("cycles_per_mbit must be positive")
        if self.max_frequency_ghz <= 0:
            raise ValueError("max_frequency_ghz must be positive")
        if self.alpha < 0 or self.e_tx < 0:
            raise ValueError("alpha and e_tx must be non-negative")
        if self.p_idle < 0:
            raise ValueError("p_idle must be non-negative")
        if self.tau <= 0:
            raise ValueError("tau must be positive")
        return self

    @property
    def cycles_total_gc(self) -> float:
        """Per-iteration training cycles ``tau c_i D_i`` (Gcycles)."""
        return cycle_budget(self.tau, self.cycles_per_mbit, self.data_mbit)

    @classmethod
    def from_paper_units(
        cls,
        data_mb: float,
        cycles_per_bit: float,
        max_frequency_ghz: float,
        alpha: float,
        e_tx: float = 0.02,
        tau: int = 1,
    ) -> "DeviceParams":
        """Construct from the units used in the paper's Section V
        (data in MB, c_i in cycles/bit)."""
        return cls(
            data_mbit=data_mb * MB_TO_MBIT,
            cycles_per_mbit=cycles_per_bit * CYCLES_PER_BIT_TO_GC_PER_MBIT,
            max_frequency_ghz=max_frequency_ghz,
            alpha=alpha,
            e_tx=e_tx,
            tau=tau,
        ).validate()


class MobileDevice:
    """One federated-learning participant: parameters + bandwidth trace."""

    def __init__(self, params: DeviceParams, trace: BandwidthTrace, device_id: int = 0):
        self.params = params.validate()
        self.trace = trace
        self.device_id = int(device_id)

    # -- Eq. (1): computation time ---------------------------------------
    def compute_time(self, frequency_ghz: float) -> float:
        """``t_cmp = tau c_i D_i / delta`` (seconds)."""
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        f = min(frequency_ghz, self.params.max_frequency_ghz)
        return self.params.cycles_total_gc / f

    # -- Eqs. (2)-(3): communication time under the time-varying trace ---
    def upload_time(self, start_time: float, model_size_mbit: float) -> float:
        """Time to upload ``xi`` Mbit starting at ``start_time``.

        Equals Eq. (2) evaluated with the Eq. (3) interval-average
        bandwidth; computed exactly by inverting the trace's
        cumulative-volume function.
        """
        if model_size_mbit <= 0:
            raise ValueError("model_size_mbit must be positive")
        return self.trace.time_to_transfer(start_time, model_size_mbit)

    # -- Eq. (6): energy ---------------------------------------------------
    def energy(self, frequency_ghz: float, t_com: float) -> float:
        """``E = alpha c_i D_i delta^2 + e_i t_com`` (energy units)."""
        f = min(frequency_ghz, self.params.max_frequency_ghz)
        e_cmp = float(
            compute_energy(
                self.params.alpha,
                self.params.cycles_per_mbit,
                self.params.data_mbit,
                f,
                tau=self.params.tau,
                include_tau=self.params.include_tau_in_energy,
            )
        )
        return e_cmp + transmission_energy(self.params.e_tx, t_com)

    def clamp_frequency(self, frequency_ghz: float, floor_frac: float = 0.02) -> float:
        """Clamp a requested frequency into ``(0, delta_max]``.

        A small positive floor keeps Eq. (1) finite; the paper's action
        space is the half-open interval ``(0, delta_max]``.
        """
        lo = floor_frac * self.params.max_frequency_ghz
        return float(np.clip(frequency_ghz, lo, self.params.max_frequency_ghz))

    def min_iteration_time(self, start_time: float, model_size_mbit: float) -> float:
        """Lower bound on this device's iteration time (full speed)."""
        t_cmp = self.compute_time(self.params.max_frequency_ghz)
        return t_cmp + self.upload_time(start_time + t_cmp, model_size_mbit)

    def with_trace(self, trace: BandwidthTrace) -> "MobileDevice":
        return MobileDevice(self.params, trace, self.device_id)

    def __repr__(self) -> str:  # pragma: no cover
        p = self.params
        return (
            f"MobileDevice(id={self.device_id}, D={p.data_mbit:.0f} Mbit, "
            f"c={p.cycles_per_mbit:.3g} Gc/Mbit, fmax={p.max_frequency_ghz:.2f} GHz)"
        )
