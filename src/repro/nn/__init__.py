"""Minimal, numpy-vectorized neural-network library.

The paper trains a small MLP actor-critic with PPO.  PyTorch is not a
dependency of this reproduction; instead this package provides exact
manual backpropagation (gradient-checked against finite differences in
``tests/test_nn_gradients.py``) for the layer types the agent needs.

Design notes (per the HPC guides): every forward/backward is a handful of
BLAS-backed matrix ops over contiguous ``float64`` arrays — there are no
per-element Python loops in the hot path.
"""

from repro.nn.initializers import he_init, orthogonal_init, xavier_init
from repro.nn.modules import (
    MLP,
    Identity,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Softplus,
    Tanh,
)
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.schedules import ConstantSchedule, LinearSchedule
from repro.nn.distributions import DiagGaussian
from repro.nn.losses import huber_loss, mse_loss

__all__ = [
    "Parameter",
    "Module",
    "Linear",
    "Tanh",
    "ReLU",
    "Sigmoid",
    "Softplus",
    "Identity",
    "Sequential",
    "MLP",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "ConstantSchedule",
    "LinearSchedule",
    "DiagGaussian",
    "mse_loss",
    "huber_loss",
    "xavier_init",
    "he_init",
    "orthogonal_init",
]
