"""First-order optimizers over :class:`repro.nn.modules.Parameter` lists."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.nn.modules import Parameter


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm <= ``max_norm``.

    Returns the pre-clipping norm (useful for training diagnostics).
    """
    if max_norm <= 0:
        raise ValueError("max_norm must be positive")
    total = 0.0
    for p in params:
        total += float(np.sum(p.grad * p.grad))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for p in params:
            p.grad *= scale
    return norm


class Optimizer:
    """Base optimizer; subclasses implement :meth:`step`."""

    def __init__(self, params: Sequence[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {"lr": np.asarray(self.lr)}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.lr = float(np.asarray(state["lr"]))


class SGD(Optimizer):
    """Vanilla SGD with optional classical momentum."""

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity: List[np.ndarray] = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for v, p in zip(self._velocity, self.params):
            if self.momentum > 0.0:
                v *= self.momentum
                v -= self.lr * p.grad
                p.data += v
            else:
                p.data -= self.lr * p.grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 3e-4,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        if not (0.0 <= self.beta1 < 1.0 and 0.0 <= self.beta2 < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        self.eps = eps
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        # Two reusable scratch buffers per parameter: the update rule is
        # evaluated fully in place (zero allocations per step) while
        # preserving the exact operation order of the allocating form.
        self._s1 = [np.empty_like(p.data) for p in self.params]
        self._s2 = [np.empty_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        b1t = 1.0 - self.beta1**self.t
        b2t = 1.0 - self.beta2**self.t
        lr = self.lr
        c1 = 1.0 - self.beta1
        c2 = 1.0 - self.beta2
        for m, v, s1, s2, p in zip(self._m, self._v, self._s1, self._s2, self.params):
            g = p.grad
            m *= self.beta1
            np.multiply(g, c1, out=s1)           # (1 - beta1) * g
            m += s1
            v *= self.beta2
            np.multiply(g, c2, out=s1)           # (1 - beta2) * g ...
            s1 *= g                              # ... * g, same association
            v += s1
            np.divide(m, b1t, out=s1)            # m_hat
            np.divide(v, b2t, out=s2)            # v_hat
            np.sqrt(s2, out=s2)
            s2 += self.eps
            s1 *= lr                             # lr * m_hat ...
            s1 /= s2                             # ... / (sqrt(v_hat) + eps)
            p.data -= s1

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {"lr": np.asarray(self.lr), "t": np.asarray(self.t)}
        for i, (m, v) in enumerate(zip(self._m, self._v)):
            state[f"m{i}"] = m.copy()
            state[f"v{i}"] = v.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        self.lr = float(np.asarray(state["lr"]))
        self.t = int(np.asarray(state["t"]))
        for i in range(len(self._m)):
            self._m[i][...] = state[f"m{i}"]
            self._v[i][...] = state[f"v{i}"]
