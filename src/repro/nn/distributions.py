"""Diagonal-Gaussian action distribution with analytic derivatives.

The PPO actor outputs a mean vector per state; the log standard deviation
is a free, state-independent parameter (the common PPO parameterization).
This module provides ``sample``, ``log_prob`` and ``entropy`` together
with the exact partial derivatives the PPO update needs:

* ``dlogp/dmean  = (a - mu) / sigma^2``
* ``dlogp/dlogstd = ((a - mu)/sigma)^2 - 1``   (per dimension)
* ``dH/dlogstd   = 1``                          (per dimension)
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator

_LOG_2PI = float(np.log(2.0 * np.pi))


class DiagGaussian:
    """A batch of independent diagonal Gaussians ``N(mean, diag(std^2))``.

    Parameters
    ----------
    mean:
        ``(B, A)`` mean matrix.
    log_std:
        ``(A,)`` shared log standard deviation (state-independent).
    """

    def __init__(self, mean: np.ndarray, log_std: np.ndarray):
        self.mean = np.atleast_2d(np.asarray(mean, dtype=np.float64))
        self.log_std = np.asarray(log_std, dtype=np.float64).ravel()
        if self.mean.shape[1] != self.log_std.shape[0]:
            raise ValueError(
                f"mean dim {self.mean.shape[1]} != log_std dim {self.log_std.shape[0]}"
            )
        self.std = np.exp(self.log_std)

    @property
    def batch(self) -> int:
        return self.mean.shape[0]

    @property
    def dim(self) -> int:
        return self.mean.shape[1]

    def sample(self, rng: SeedLike = None) -> np.ndarray:
        """Draw one action per batch row (reparameterized form)."""
        rng = as_generator(rng)
        noise = rng.standard_normal(self.mean.shape)
        return self.mean + self.std * noise

    def mode(self) -> np.ndarray:
        """Deterministic action (the mean) — used for online reasoning."""
        return self.mean.copy()

    def log_prob(self, actions: np.ndarray) -> np.ndarray:
        """Per-row log density, shape ``(B,)``."""
        actions = np.atleast_2d(np.asarray(actions, dtype=np.float64))
        z = (actions - self.mean) / self.std
        return -0.5 * np.sum(z * z, axis=1) - np.sum(self.log_std) - 0.5 * self.dim * _LOG_2PI

    def entropy(self) -> float:
        """Entropy (identical for every batch row)."""
        return float(np.sum(self.log_std) + 0.5 * self.dim * (1.0 + _LOG_2PI))

    # -- analytic derivatives for the policy-gradient update -------------
    def log_prob_grads(self, actions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(dlogp/dmean, dlogp/dlog_std)``.

        Shapes: ``(B, A)`` and ``(B, A)``.  The log_std gradient is per
        batch row *before* summation so callers can weight rows (e.g. by
        the PPO ratio term) and then reduce.
        """
        actions = np.atleast_2d(np.asarray(actions, dtype=np.float64))
        z = (actions - self.mean) / self.std
        d_mean = z / self.std
        d_log_std = z * z - 1.0
        return d_mean, d_log_std

    def entropy_grad_log_std(self) -> np.ndarray:
        """``dH/dlog_std`` — a ones vector of shape ``(A,)``."""
        return np.ones_like(self.log_std)

    def kl_divergence(self, other: "DiagGaussian") -> np.ndarray:
        """Per-row ``KL(self || other)`` — a PPO early-stop diagnostic."""
        if self.dim != other.dim:
            raise ValueError("KL between distributions of different dims")
        var_ratio = (self.std / other.std) ** 2
        mean_term = ((self.mean - other.mean) / other.std) ** 2
        return 0.5 * np.sum(var_ratio + mean_term - 1.0 - np.log(var_ratio), axis=1)
