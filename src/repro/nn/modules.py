"""Layers with exact manual backpropagation.

The contract every :class:`Module` obeys:

* ``forward(x)`` consumes a batch ``(B, in)`` and returns ``(B, out)``,
  caching whatever the backward pass needs;
* ``backward(grad_out)`` consumes ``dL/d(output)`` of the *most recent*
  forward, **accumulates** ``dL/d(param)`` into each parameter's ``grad``
  and returns ``dL/d(input)``;
* ``zero_grad()`` clears accumulated gradients.

This mirrors the torch autograd surface closely enough that the RL code
reads naturally, while staying pure numpy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis import sanitizer as _sanitizer
from repro.nn.initializers import get_initializer
from repro.utils.rng import SeedLike, as_generator


class Parameter:
    """A trainable tensor with an accumulated gradient buffer."""

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Parameter({self.name}, shape={self.data.shape})"


class Module:
    """Base class; subclasses define ``forward``/``backward``."""

    def parameters(self) -> List[Parameter]:
        return []

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        """Inference-only forward: no caching, batch-composition-stable.

        Row ``i`` of the output is bit-identical whether the row is
        computed alone or inside any batch — the property the serving
        stack (:mod:`repro.serve`) relies on so that micro-batched
        responses match single-request inference exactly.  Implementations
        must not touch the backward caches, so concurrent inference never
        corrupts an in-flight training step.
        """
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = self.forward(x)
        san = _sanitizer.ACTIVE
        if san is not None:
            san.check_forward(self, x, out)
        return out

    # -- persistence -----------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        out = {}
        for i, p in enumerate(self.parameters()):
            out[f"{prefix}p{i}"] = p.data.copy()
        return out

    def load_state_dict(self, state: Dict[str, np.ndarray], prefix: str = "") -> None:
        params = self.parameters()
        for i, p in enumerate(params):
            key = f"{prefix}p{i}"
            if key not in state:
                raise KeyError(f"missing parameter {key} in state dict")
            arr = np.asarray(state[key], dtype=np.float64)
            if arr.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {key}: checkpoint {arr.shape} vs model {p.data.shape}"
                )
            p.data[...] = arr

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with cached input for backward."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        init: str = "orthogonal",
        gain: float = np.sqrt(2.0),
        rng: SeedLike = None,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear features must be positive")
        rng = as_generator(rng)
        initializer = get_initializer(init)
        if init == "orthogonal":
            w = initializer(in_features, out_features, gain=gain, rng=rng)
        else:
            w = initializer(in_features, out_features, rng=rng)
        self.W = Parameter(w, "W")
        self.b = Parameter(np.zeros(out_features), "b")
        self.in_features = in_features
        self.out_features = out_features
        self._x: Optional[np.ndarray] = None
        # Backward-pass scratch: parameter-gradient shapes are fixed, so
        # the dL/dW and dL/db temporaries are computed into preallocated
        # buffers instead of fresh arrays every step.
        self._gw = np.empty_like(self.W.data)
        self._gb = np.empty_like(self.b.data)

    def parameters(self) -> List[Parameter]:
        return [self.W, self.b]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected (B, {self.in_features}); got {x.shape}"
            )
        self._x = x
        return x @ self.W.data + self.b.data

    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        """Batch-stable affine map (no input caching).

        BLAS gemm reassociates the k-reduction differently for different
        batch shapes, so ``(X @ W)[i]`` is *not* bit-identical to
        ``X[i:i+1] @ W``.  Accumulating the k terms in fixed order with
        elementwise (row-independent) operations makes every row's result
        invariant to the rest of the batch, at the cost of ``in_features``
        vectorized ops instead of one gemm — the right trade for the
        low-dimensional actor MLPs this serves.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected (B, {self.in_features}); got {x.shape}"
            )
        w = self.W.data
        out = np.broadcast_to(self.b.data, (x.shape[0], self.out_features)).copy()
        for k in range(self.in_features):
            out += x[:, k, None] * w[k]
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.asarray(grad_out, dtype=np.float64)
        np.matmul(self._x.T, grad_out, out=self._gw)
        self.W.grad += self._gw
        np.sum(grad_out, axis=0, out=self._gb)
        self.b.grad += self._gb
        return grad_out @ self.W.data.T


class _Activation(Module):
    """Stateless elementwise activation with cached forward context.

    The ``*_owned`` variants take ownership of their argument and may
    compute in place — :class:`Sequential` calls them only when the
    neighbouring layer is a :class:`Linear`, whose matmul output/input
    gradient is a freshly allocated array nobody else references.  Every
    owned variant produces bit-identical values to its allocating twin;
    subclasses with nothing to gain inherit the delegating defaults.
    """

    def __init__(self) -> None:
        self._cache: Optional[np.ndarray] = None

    def forward_owned(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def backward_owned(self, grad_out: np.ndarray) -> np.ndarray:
        return self.backward(grad_out)


class Tanh(_Activation):
    def forward(self, x: np.ndarray) -> np.ndarray:
        y = np.tanh(x)
        self._cache = y
        return y

    def forward_owned(self, x: np.ndarray) -> np.ndarray:
        y = np.tanh(x, out=x)
        self._cache = y
        return y

    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._cache**2)

    def backward_owned(self, grad_out: np.ndarray) -> np.ndarray:
        grad_out *= 1.0 - self._cache**2
        return grad_out


class ReLU(_Activation):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x > 0
        return np.where(self._cache, x, 0.0)

    def forward_owned(self, x: np.ndarray) -> np.ndarray:
        mask = x > 0
        self._cache = mask
        # Matches np.where(mask, x, 0.0) bit-for-bit: masked-out lanes
        # (including NaN and -0.0 inputs, which compare False) become
        # +0.0 either way.
        x[~mask] = 0.0
        return x

    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        return np.where(x > 0, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._cache

    def backward_owned(self, grad_out: np.ndarray) -> np.ndarray:
        grad_out *= self._cache
        return grad_out


class Sigmoid(_Activation):
    def forward(self, x: np.ndarray) -> np.ndarray:
        y = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        self._cache = y
        return y

    def forward_owned(self, x: np.ndarray) -> np.ndarray:
        # Same clip -> negate -> exp -> +1 -> reciprocal chain as
        # forward, computed into the owned buffer.
        np.clip(x, -60.0, 60.0, out=x)
        np.negative(x, out=x)
        np.exp(x, out=x)
        x += 1.0
        np.divide(1.0, x, out=x)
        self._cache = x
        return x

    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._cache * (1.0 - self._cache)

    def backward_owned(self, grad_out: np.ndarray) -> np.ndarray:
        # Two in-place multiplies preserve the left-to-right association
        # of grad * cache * (1 - cache).
        grad_out *= self._cache
        grad_out *= 1.0 - self._cache
        return grad_out


class Softplus(_Activation):
    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x
        return np.logaddexp(0.0, x)

    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        return np.logaddexp(0.0, x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out / (1.0 + np.exp(-self._cache))


class Identity(_Activation):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)

    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


ACTIVATIONS = {
    "tanh": Tanh,
    "relu": ReLU,
    "sigmoid": Sigmoid,
    "softplus": Softplus,
    "identity": Identity,
}


class Sequential(Module):
    """Composes modules; backward runs the chain in reverse.

    Activation layers sandwiched against a :class:`Linear` run through
    their in-place ``*_owned`` variants on the unsanitized fast path:
    the Linear's matmul output (forward) / input gradient (backward) is
    a fresh array this chain exclusively owns, so mutating it saves one
    allocation per activation per pass with bit-identical results.
    Arrays supplied by the caller are never mutated — the first layer
    always runs the allocating variant.
    """

    def __init__(self, layers: Sequence[Module]):
        self.layers = list(layers)
        self._owned_fwd = [
            isinstance(layer, _Activation)
            and i > 0
            and isinstance(self.layers[i - 1], Linear)
            for i, layer in enumerate(self.layers)
        ]
        self._owned_bwd = [
            isinstance(layer, _Activation)
            and i + 1 < len(self.layers)
            and isinstance(self.layers[i + 1], Linear)
            for i, layer in enumerate(self.layers)
        ]

    def parameters(self) -> List[Parameter]:
        out: List[Parameter] = []
        for layer in self.layers:
            out.extend(layer.parameters())
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        san = _sanitizer.ACTIVE
        if san is None:
            for layer, owned in zip(self.layers, self._owned_fwd):
                x = layer.forward_owned(x) if owned else layer.forward(x)
            return x
        return self._forward_sanitized(x, san)

    def forward_infer(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward_infer(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        san = _sanitizer.ACTIVE
        if san is None:
            for i in range(len(self.layers) - 1, -1, -1):
                layer = self.layers[i]
                if self._owned_bwd[i]:
                    grad_out = layer.backward_owned(grad_out)
                else:
                    grad_out = layer.backward(grad_out)
            return grad_out
        return self._backward_sanitized(grad_out, san)

    def _forward_sanitized(self, x: np.ndarray, san) -> np.ndarray:
        """The checking twin of ``forward``: per-layer provenance."""
        cls = type(self).__name__
        for i, layer in enumerate(self.layers):
            out = layer.forward(x)
            san.check_forward(
                layer, x, out, name=f"{cls}.layers[{i}]:{type(layer).__name__}"
            )
            x = out
        return x

    def _backward_sanitized(self, grad_out: np.ndarray, san) -> np.ndarray:
        cls = type(self).__name__
        for i in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[i]
            grad_in = layer.backward(grad_out)
            san.check_backward(
                layer, grad_out, grad_in,
                name=f"{cls}.layers[{i}]:{type(layer).__name__}",
            )
            grad_out = grad_in
        return grad_out

    def __iter__(self):
        return iter(self.layers)


class MLP(Sequential):
    """Multilayer perceptron with configurable hidden sizes/activation.

    The final layer uses a small orthogonal gain (``out_gain``), the usual
    PPO trick to start near a uniform/deterministic output.
    """

    def __init__(
        self,
        in_dim: int,
        hidden: Iterable[int],
        out_dim: int,
        activation: str = "tanh",
        out_activation: str = "identity",
        out_gain: float = 0.01,
        rng: SeedLike = None,
    ):
        rng = as_generator(rng)
        if activation not in ACTIVATIONS or out_activation not in ACTIVATIONS:
            raise KeyError(
                f"unknown activation; available: {sorted(ACTIVATIONS)}"
            )
        hidden = list(hidden)
        layers: List[Module] = []
        prev = in_dim
        for width in hidden:
            layers.append(Linear(prev, width, gain=np.sqrt(2.0), rng=rng))
            layers.append(ACTIVATIONS[activation]())
            prev = width
        layers.append(Linear(prev, out_dim, gain=out_gain, rng=rng))
        layers.append(ACTIVATIONS[out_activation]())
        super().__init__(layers)
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.hidden = hidden
