"""Scalar schedules for learning rates and exploration coefficients."""

from __future__ import annotations


class ConstantSchedule:
    """Always returns ``value``."""

    def __init__(self, value: float):
        self.value = float(value)

    def __call__(self, progress: float) -> float:
        return self.value


class LinearSchedule:
    """Linear interpolation from ``start`` to ``end`` over progress in [0, 1].

    ``progress`` outside [0, 1] is clamped, so callers can pass raw
    ``step / total_steps`` ratios without pre-clipping.
    """

    def __init__(self, start: float, end: float = 0.0):
        self.start = float(start)
        self.end = float(end)

    def __call__(self, progress: float) -> float:
        p = min(max(progress, 0.0), 1.0)
        return self.start + (self.end - self.start) * p


def as_schedule(value) -> "ConstantSchedule":
    """Coerce a number into a constant schedule; pass schedules through."""
    if callable(value):
        return value
    return ConstantSchedule(float(value))
