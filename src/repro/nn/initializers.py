"""Weight initialization schemes.

Orthogonal initialization with per-layer gain is the standard choice for
PPO policies (it keeps early policy outputs near-deterministic and small);
Xavier/He are provided for the supervised FL models.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator


def xavier_init(fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """Glorot-uniform initialization, suited to tanh networks."""
    rng = as_generator(rng)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)).astype(np.float64)


def he_init(fan_in: int, fan_out: int, rng: SeedLike = None) -> np.ndarray:
    """He-normal initialization, suited to ReLU networks."""
    rng = as_generator(rng)
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal((fan_in, fan_out)) * std).astype(np.float64)


def orthogonal_init(
    fan_in: int, fan_out: int, gain: float = 1.0, rng: SeedLike = None
) -> np.ndarray:
    """Orthogonal initialization (Saxe et al.) with scale ``gain``."""
    rng = as_generator(rng)
    a = rng.standard_normal((fan_in, fan_out))
    # Economy QR of the taller orientation, then slice back.
    if fan_in < fan_out:
        a = a.T
    q, r = np.linalg.qr(a)
    # Sign correction so the distribution is uniform over orthogonal matrices.
    q *= np.sign(np.diag(r))
    if fan_in < fan_out:
        q = q.T
    return (gain * q[:fan_in, :fan_out]).astype(np.float64)


INITIALIZERS = {
    "xavier": xavier_init,
    "he": he_init,
    "orthogonal": orthogonal_init,
}


def get_initializer(name: str):
    """Look up an initializer by name; raises ``KeyError`` with options."""
    try:
        return INITIALIZERS[name]
    except KeyError:
        raise KeyError(
            f"unknown initializer {name!r}; available: {sorted(INITIALIZERS)}"
        ) from None
