"""Scalar losses with analytic gradients.

Each loss returns ``(value, grad_wrt_prediction)`` so callers can feed the
gradient straight into ``Module.backward``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def mse_loss(pred: np.ndarray, target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean-squared error over all elements."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: pred {pred.shape} vs target {target.shape}")
    diff = pred - target
    n = pred.size
    value = float(np.sum(diff * diff) / n)
    grad = (2.0 / n) * diff
    return value, grad


def huber_loss(
    pred: np.ndarray, target: np.ndarray, delta: float = 1.0
) -> Tuple[float, np.ndarray]:
    """Huber (smooth-L1) loss; robust alternative for the critic."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: pred {pred.shape} vs target {target.shape}")
    diff = pred - target
    abs_diff = np.abs(diff)
    quadratic = abs_diff <= delta
    n = pred.size
    value = float(
        np.sum(
            np.where(
                quadratic, 0.5 * diff * diff, delta * (abs_diff - 0.5 * delta)
            )
        )
        / n
    )
    grad = np.where(quadratic, diff, delta * np.sign(diff)) / n
    return value, grad
